package dyngraph

import (
	"testing"

	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

// TestVpartBalanceBounds pins the vertex-partition rule itself: u mod P
// splits [0, n) into P parts whose sizes differ by at most one, for any
// n — the static balance guarantee the paper's Vpart scheme relies on
// (each vertex has exactly one writer, and no writer owns more than
// ceil(n/P) vertices).
func TestVpartBalanceBounds(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000, 1 << 12} {
		for _, p := range []int{1, 2, 3, 4, 7, 8, 13} {
			counts := make([]int, p)
			for u := 0; u < n; u++ {
				counts[u%p]++
			}
			lo, hi := n, 0
			for _, c := range counts {
				lo, hi = min(lo, c), max(hi, c)
			}
			if hi-lo > 1 {
				t.Fatalf("n=%d p=%d: owned-vertex counts span [%d,%d]", n, p, lo, hi)
			}
			if hi > (n+p-1)/p {
				t.Fatalf("n=%d p=%d: max owner load %d > ceil(n/p)", n, p, hi)
			}
		}
	}
}

// partitionStreams builds an insert batch with unique time labels and a
// delete batch removing every other inserted edge exactly once, so the
// end state is deterministic under both tuple-exact and label-ignoring
// delete semantics (the oracle ignores labels).
func partitionStreams(r *xrand.State, n, count int) (ins, dels []edge.Update) {
	for i := 0; i < count; i++ {
		ins = append(ins, edge.Update{
			Edge: edge.Edge{U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: uint32(i + 1)},
			Op:   edge.Insert,
		})
	}
	for i := 0; i < len(ins); i += 2 {
		dels = append(dels, edge.Update{Edge: ins[i].Edge, Op: edge.Delete})
	}
	return ins, dels
}

// TestVpartOwnershipRoundTrip applies the same batches at every worker
// count and checks the store against the oracle: although every worker
// scans the entire stream, each update is applied exactly once — by its
// owner — so the resulting graph is independent of P (no duplicated or
// dropped updates).
func TestVpartOwnershipRoundTrip(t *testing.T) {
	const n = 64
	r := xrand.New(77)
	ins, dels := partitionStreams(r, n, 2000)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		s := NewVpart(n, 64)
		o := NewOracle(n)
		s.ApplyBatch(workers, ins)
		s.ApplyBatch(workers, dels)
		o.ApplyBatch(1, ins)
		o.ApplyBatch(1, dels)
		stateMatches(t, s, o)
	}
}

// TestVpartDeterministicAcrossWorkers checks a stronger property than
// the oracle multiset: per-vertex adjacency *sequences* are identical
// for every worker count. Each vertex has a single writer that applies
// its updates in stream order, so the layout cannot depend on P.
func TestVpartDeterministicAcrossWorkers(t *testing.T) {
	const n = 48
	r := xrand.New(78)
	ins, dels := partitionStreams(r, n, 1500)
	type arc struct {
		v edge.ID
		t uint32
	}
	seq := func(workers int) [][]arc {
		s := NewVpart(n, 64)
		s.ApplyBatch(workers, ins)
		s.ApplyBatch(workers, dels)
		out := make([][]arc, n)
		for u := 0; u < n; u++ {
			s.Neighbors(edge.ID(u), func(v edge.ID, t uint32) bool {
				out[u] = append(out[u], arc{v, t})
				return true
			})
		}
		return out
	}
	want := seq(1)
	for _, workers := range []int{2, 3, 8} {
		got := seq(workers)
		for u := range want {
			if len(got[u]) != len(want[u]) {
				t.Fatalf("workers=%d: vertex %d degree %d != %d", workers, u, len(got[u]), len(want[u]))
			}
			for i := range want[u] {
				if got[u][i] != want[u][i] {
					t.Fatalf("workers=%d: vertex %d arc %d = %v, want %v",
						workers, u, i, got[u][i], want[u][i])
				}
			}
		}
	}
}

// TestEpartBlockWorkerBalance verifies blockWorker against the static
// block decomposition it mirrors: every index maps to exactly the
// worker whose contiguous block contains it, and block sizes differ by
// at most one.
func TestEpartBlockWorkerBalance(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 8} {
		for _, n := range []int{0, 1, 5, 7, 8, 64, 1000} {
			// Rebuild par.ForBlock's partition: r blocks of q+1, then q.
			q, r := n/workers, n%workers
			idx := 0
			for w := 0; w < workers; w++ {
				size := q
				if w < r {
					size++
				}
				for i := 0; i < size; i++ {
					if got := blockWorker(workers, n, idx); got != w {
						t.Fatalf("workers=%d n=%d: blockWorker(%d) = %d, want %d",
							workers, n, idx, got, w)
					}
					idx++
				}
			}
			if idx != n {
				t.Fatalf("workers=%d n=%d: partition covered %d indices", workers, n, idx)
			}
		}
	}
}

// TestEpartOwnershipRoundTrip drives Epart with a hot-vertex-heavy
// stream — a star on vertex 0 well past the hot threshold plus random
// background traffic — so the buffered-insert path and merge step are
// exercised, then checks the result against the oracle at every worker
// count.
func TestEpartOwnershipRoundTrip(t *testing.T) {
	const n = 64
	r := xrand.New(79)
	ins, dels := partitionStreams(r, n, 800)
	star := make([]edge.Update, 0, 512)
	for i := 0; i < 512; i++ {
		star = append(star, edge.Update{
			Edge: edge.Edge{U: 0, V: edge.ID(1 + i%(n-1)), T: uint32(i)},
			Op:   edge.Insert,
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		s := NewEpart(n, 256, 4)
		o := NewOracle(n)
		// Three batches: random inserts make vertex 0 hot, the star then
		// hits the buffered path from the start, deletes come last so
		// they never race deferred inserts within a batch.
		for _, batch := range [][]edge.Update{ins, star, dels} {
			s.ApplyBatch(workers, batch)
			o.ApplyBatch(1, batch)
		}
		stateMatches(t, s, o)
		if s.Degree(0) <= s.HotThresh {
			t.Fatalf("workers=%d: star vertex degree %d never crossed hot threshold %d",
				workers, s.Degree(0), s.HotThresh)
		}
	}
}

// TestEpartDeterministicSerial checks sequence-level determinism of the
// merge step at workers=1: two fresh stores fed the same stream lay out
// identical adjacency sequences (the semi-sort and group append are
// deterministic; only multi-worker lock interleaving may reorder).
func TestEpartDeterministicSerial(t *testing.T) {
	const n = 32
	r := xrand.New(80)
	ins, dels := partitionStreams(r, n, 1000)
	type arc struct {
		v edge.ID
		t uint32
	}
	run := func() [][]arc {
		s := NewEpart(n, 64, 4)
		s.ApplyBatch(1, ins)
		s.ApplyBatch(1, dels)
		out := make([][]arc, n)
		for u := 0; u < n; u++ {
			s.Neighbors(edge.ID(u), func(v edge.ID, t uint32) bool {
				out[u] = append(out[u], arc{v, t})
				return true
			})
		}
		return out
	}
	a, b := run(), run()
	for u := range a {
		if len(a[u]) != len(b[u]) {
			t.Fatalf("vertex %d: degrees differ across runs", u)
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatalf("vertex %d arc %d differs across runs: %v vs %v", u, i, a[u][i], b[u][i])
			}
		}
	}
}
