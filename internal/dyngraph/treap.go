package dyngraph

import (
	"sync"

	"snapdyn/internal/edge"
)

// The treap node pool. Nodes for all vertices live in per-shard slices
// addressed by 32-bit indices, keeping the structure compact (24 bytes per
// node) and allocation amortized — the same role the arena plays for
// Dyn-arr. A vertex's treap is wholly contained in its shard, so one
// shard mutex serializes all operations touching that vertex.

// nilNode is the null link.
const nilNode = ^uint32(0)

// tnode is one treap node: a BST on key (neighbor id) that is
// simultaneously a heap on pri. cnt is the multiplicity of the neighbor
// (multigraph semantics); ts is the most recent time label inserted.
type tnode struct {
	key  uint32
	ts   uint32
	pri  uint32
	cnt  uint32
	l, r uint32
}

// treapShard owns the nodes of all vertices hashed to it.
type treapShard struct {
	mu    sync.Mutex
	nodes []tnode
	free  []uint32
	rng   uint64 // per-shard priority generator state
	_     [3]uint64
}

// nextPri draws a pseudo-random heap priority (splitmix64 step).
func (sh *treapShard) nextPri() uint32 {
	sh.rng += 0x9e3779b97f4a7c15
	z := sh.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32((z ^ (z >> 31)) >> 32)
}

func (sh *treapShard) alloc(key, ts uint32) uint32 {
	if n := len(sh.free); n > 0 {
		idx := sh.free[n-1]
		sh.free = sh.free[:n-1]
		sh.nodes[idx] = tnode{key: key, ts: ts, pri: sh.nextPri(), cnt: 1, l: nilNode, r: nilNode}
		return idx
	}
	sh.nodes = append(sh.nodes, tnode{key: key, ts: ts, pri: sh.nextPri(), cnt: 1, l: nilNode, r: nilNode})
	return uint32(len(sh.nodes) - 1)
}

func (sh *treapShard) release(idx uint32) {
	sh.free = append(sh.free, idx)
}

// insert adds one tuple with the given key into the treap rooted at root,
// returning the new root. A duplicate key raises the node's multiplicity
// and refreshes its time label.
func (sh *treapShard) insert(root, key, ts uint32) uint32 {
	if root == nilNode {
		return sh.alloc(key, ts)
	}
	// Note: the recursive calls may grow sh.nodes, so node fields are
	// re-indexed (not held through pointers) across them.
	switch nk := sh.nodes[root].key; {
	case key == nk:
		n := &sh.nodes[root]
		n.cnt++
		n.ts = ts
	case key < nk:
		l := sh.insert(sh.nodes[root].l, key, ts)
		sh.nodes[root].l = l
		if sh.nodes[l].pri > sh.nodes[root].pri {
			return sh.rotateRight(root)
		}
	default:
		r := sh.insert(sh.nodes[root].r, key, ts)
		sh.nodes[root].r = r
		if sh.nodes[r].pri > sh.nodes[root].pri {
			return sh.rotateLeft(root)
		}
	}
	return root
}

// rotateRight promotes root.l; heap order is restored locally.
func (sh *treapShard) rotateRight(root uint32) uint32 {
	n := &sh.nodes[root]
	l := n.l
	ln := &sh.nodes[l]
	n.l = ln.r
	ln.r = root
	return l
}

// rotateLeft promotes root.r.
func (sh *treapShard) rotateLeft(root uint32) uint32 {
	n := &sh.nodes[root]
	r := n.r
	rn := &sh.nodes[r]
	n.r = rn.l
	rn.l = root
	return r
}

// deleteKey removes one tuple with the given key, physically removing the
// node when its multiplicity reaches zero (treaps "actually remove the
// node", unlike Dyn-arr's tombstones). It returns the new root and
// whether a tuple was removed. The search is iterative: it tracks the
// parent link so only the found node's subtree is touched.
func (sh *treapShard) deleteKey(root, key uint32) (uint32, bool) {
	cur := root
	parent := nilNode
	leftChild := false
	for cur != nilNode {
		n := &sh.nodes[cur]
		switch {
		case key < n.key:
			parent, cur, leftChild = cur, n.l, true
		case key > n.key:
			parent, cur, leftChild = cur, n.r, false
		default:
			if n.cnt > 1 {
				n.cnt--
				return root, true
			}
			merged := sh.merge(n.l, n.r)
			sh.release(cur)
			if parent == nilNode {
				return merged, true
			}
			if leftChild {
				sh.nodes[parent].l = merged
			} else {
				sh.nodes[parent].r = merged
			}
			return root, true
		}
	}
	return root, false
}

// merge joins two treaps where every key in l is < every key in r.
func (sh *treapShard) merge(l, r uint32) uint32 {
	if l == nilNode {
		return r
	}
	if r == nilNode {
		return l
	}
	if sh.nodes[l].pri > sh.nodes[r].pri {
		nr := sh.merge(sh.nodes[l].r, r)
		sh.nodes[l].r = nr
		return l
	}
	nl := sh.merge(l, sh.nodes[r].l)
	sh.nodes[r].l = nl
	return r
}

// split partitions the treap rooted at root into keys < key and keys >=
// key.
func (sh *treapShard) split(root, key uint32) (lt, ge uint32) {
	if root == nilNode {
		return nilNode, nilNode
	}
	n := &sh.nodes[root]
	if n.key < key {
		l, g := sh.split(n.r, key)
		n.r = l
		return root, g
	}
	l, g := sh.split(n.l, key)
	n.l = g
	return l, root
}

// union destructively merges treap b into treap a (both in this shard),
// summing multiplicities of shared keys, and returns the new root. This
// is the set-union kernel the paper highlights for batched updates and
// subgraph extraction.
func (sh *treapShard) union(a, b uint32) uint32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if sh.nodes[a].pri < sh.nodes[b].pri {
		a, b = b, a
	}
	key := sh.nodes[a].key
	lt, ge := sh.split(b, key)
	// Separate b-nodes equal to key (at most one, since keys are unique
	// within a treap) and fold their multiplicity into a.
	eq, gt := sh.split(ge, key+1)
	if eq != nilNode {
		sh.nodes[a].cnt += sh.nodes[eq].cnt
		if sh.nodes[eq].ts > sh.nodes[a].ts {
			sh.nodes[a].ts = sh.nodes[eq].ts
		}
		sh.release(eq)
	}
	sh.nodes[a].l = sh.union(sh.nodes[a].l, lt)
	sh.nodes[a].r = sh.union(sh.nodes[a].r, gt)
	return a
}

// find returns the node index holding key, or nilNode.
func (sh *treapShard) find(root, key uint32) uint32 {
	for root != nilNode {
		n := &sh.nodes[root]
		switch {
		case key == n.key:
			return root
		case key < n.key:
			root = n.l
		default:
			root = n.r
		}
	}
	return nilNode
}

// walk visits tuples in key order (each key repeated cnt times) until fn
// returns false; the return value propagates the early stop.
func (sh *treapShard) walk(root uint32, fn func(key, ts, cnt uint32) bool) bool {
	// Iterative in-order traversal; depth is O(log n) w.h.p. but the
	// stack grows as needed to stay safe on adversarial shapes.
	stack := make([]uint32, 0, 48)
	cur := root
	for cur != nilNode || len(stack) > 0 {
		for cur != nilNode {
			stack = append(stack, cur)
			cur = sh.nodes[cur].l
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &sh.nodes[cur]
		if !fn(n.key, n.ts, n.cnt) {
			return false
		}
		cur = n.r
	}
	return true
}

// freeAll returns every node of the treap to the free list.
func (sh *treapShard) freeAll(root uint32) {
	if root == nilNode {
		return
	}
	sh.freeAll(sh.nodes[root].l)
	sh.freeAll(sh.nodes[root].r)
	sh.release(root)
}

// checkInvariants verifies BST order on keys and heap order on
// priorities; used by property tests.
func (sh *treapShard) checkInvariants(root uint32, lo, hi int64) bool {
	if root == nilNode {
		return true
	}
	n := &sh.nodes[root]
	if int64(n.key) <= lo || int64(n.key) >= hi || n.cnt == 0 {
		return false
	}
	for _, c := range [2]uint32{n.l, n.r} {
		if c != nilNode && sh.nodes[c].pri > n.pri {
			return false
		}
	}
	return sh.checkInvariants(n.l, lo, int64(n.key)) &&
		sh.checkInvariants(n.r, int64(n.key), hi)
}

// treapPool groups shards and maps vertices onto them.
type treapPool struct {
	shards []treapShard
	mask   uint32
}

func newTreapPool(shardCount int, seed uint64) *treapPool {
	// Round up to a power of two.
	sc := 1
	for sc < shardCount {
		sc <<= 1
	}
	p := &treapPool{shards: make([]treapShard, sc), mask: uint32(sc - 1)}
	for i := range p.shards {
		p.shards[i].rng = seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
	}
	return p
}

func (p *treapPool) shard(u edge.ID) *treapShard {
	return &p.shards[u&p.mask]
}
