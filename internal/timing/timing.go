// Package timing provides the measurement harness shared by the figure
// drivers: wall-clock timing, the paper's MUPS metric (millions of
// updates per second), worker-count sweeps, and aligned table output for
// paper-style series.
package timing

import (
	"fmt"
	"io"
	"sort"
	"time"

	"snapdyn/internal/par"
)

// Time runs fn and returns its wall-clock duration in seconds.
func Time(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// MUPS converts an operation count and duration to millions of updates
// per second, the paper's performance rate.
func MUPS(ops int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(ops) / seconds / 1e6
}

// SweepWorkers returns the worker counts for a scaling experiment:
// doubling from 1 up to max (always including max). max <= 0 uses
// GOMAXPROCS.
func SweepWorkers(max int) []int {
	if max <= 0 {
		max = par.MaxWorkers()
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// Measurement is one data point of a figure series.
type Measurement struct {
	Label   string  // series name, e.g. "dyn-arr"
	Param   string  // x-axis value, e.g. "p=8" or "n=2^20"
	Workers int     // worker count used
	Ops     int64   // operations performed (updates, queries, edges)
	Seconds float64 // wall-clock duration
}

// MUPS returns the measurement's update rate.
func (m Measurement) MUPS() float64 { return MUPS(m.Ops, m.Seconds) }

// Table collects the measurements reproducing one paper figure.
type Table struct {
	Title string
	Note  string
	Rows  []Measurement
}

// Add appends a measurement.
func (t *Table) Add(m Measurement) { t.Rows = append(t.Rows, m) }

// Speedup returns m's speedup relative to the 1-worker measurement with
// the same label (and, when present, the same Param), or 0 when absent.
func (t *Table) Speedup(m Measurement) float64 {
	var base float64
	for _, r := range t.Rows {
		if r.Label == m.Label && r.Workers == 1 && (r.Param == m.Param || r.Param == "" || m.Param == "") {
			base = r.Seconds
			break
		}
	}
	if base == 0 || m.Seconds == 0 {
		return 0
	}
	return base / m.Seconds
}

// Fprint writes the table in aligned columns with MUPS and speedup.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	fmt.Fprintf(w, "%-24s %-14s %8s %12s %12s %10s %9s\n",
		"series", "param", "workers", "ops", "seconds", "MUPS", "speedup")
	for _, m := range t.Rows {
		sp := t.Speedup(m)
		spStr := "-"
		if sp > 0 {
			spStr = fmt.Sprintf("%.2f", sp)
		}
		fmt.Fprintf(w, "%-24s %-14s %8d %12d %12.4f %10.2f %9s\n",
			m.Label, m.Param, m.Workers, m.Ops, m.Seconds, m.MUPS(), spStr)
	}
}

// BestMUPS returns the highest-rate measurement per label, useful for
// "who wins" summaries.
func (t *Table) BestMUPS() map[string]Measurement {
	best := map[string]Measurement{}
	for _, m := range t.Rows {
		if cur, ok := best[m.Label]; !ok || m.MUPS() > cur.MUPS() {
			best[m.Label] = m
		}
	}
	return best
}

// Labels returns the distinct series labels in sorted order.
func (t *Table) Labels() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range t.Rows {
		if !seen[m.Label] {
			seen[m.Label] = true
			out = append(out, m.Label)
		}
	}
	sort.Strings(out)
	return out
}
