package timing

import (
	"strings"
	"testing"
	"time"
)

func TestTime(t *testing.T) {
	secs := Time(func() { time.Sleep(10 * time.Millisecond) })
	if secs < 0.005 || secs > 1 {
		t.Fatalf("measured %v seconds for a 10ms sleep", secs)
	}
}

func TestMUPS(t *testing.T) {
	if got := MUPS(25_000_000, 1.0); got != 25 {
		t.Fatalf("MUPS = %v, want 25", got)
	}
	if got := MUPS(100, 0); got != 0 {
		t.Fatalf("MUPS with zero time = %v", got)
	}
}

func TestSweepWorkers(t *testing.T) {
	got := SweepWorkers(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	got = SweepWorkers(6)
	want = []int{1, 2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep(6) = %v, want %v", got, want)
		}
	}
	if got := SweepWorkers(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("sweep(1) = %v", got)
	}
	if got := SweepWorkers(0); len(got) == 0 {
		t.Fatal("sweep(0) empty")
	}
}

func TestSpeedupAndPrint(t *testing.T) {
	tbl := &Table{Title: "test", Note: "note"}
	tbl.Add(Measurement{Label: "a", Workers: 1, Ops: 1000, Seconds: 2.0})
	tbl.Add(Measurement{Label: "a", Workers: 4, Ops: 1000, Seconds: 0.5})
	tbl.Add(Measurement{Label: "b", Workers: 4, Ops: 1000, Seconds: 0.5})
	if sp := tbl.Speedup(tbl.Rows[1]); sp != 4 {
		t.Fatalf("speedup = %v, want 4", sp)
	}
	if sp := tbl.Speedup(tbl.Rows[2]); sp != 0 {
		t.Fatalf("speedup without baseline = %v, want 0", sp)
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== test ==", "note", "speedup", "4.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBestMUPSAndLabels(t *testing.T) {
	tbl := &Table{}
	tbl.Add(Measurement{Label: "x", Workers: 1, Ops: 100, Seconds: 1})
	tbl.Add(Measurement{Label: "x", Workers: 2, Ops: 100, Seconds: 0.1})
	tbl.Add(Measurement{Label: "y", Workers: 1, Ops: 100, Seconds: 0.5})
	best := tbl.BestMUPS()
	if best["x"].Workers != 2 {
		t.Fatalf("best x = %+v", best["x"])
	}
	labels := tbl.Labels()
	if len(labels) != 2 || labels[0] != "x" || labels[1] != "y" {
		t.Fatalf("labels = %v", labels)
	}
}
