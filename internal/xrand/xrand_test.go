package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("generators with different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[c1.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 1000; i++ {
		if seen[c2.Uint64()] {
			collisions++
		}
	}
	if collisions > 2 {
		t.Fatalf("split children share %d of 1000 values; expected ~0", collisions)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint32nBounds(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(n uint32) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint32n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(13)
	const buckets = 8
	counts := make([]int, buckets)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := make([]int, 100)
	r.Perm(p)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: value %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(19)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r State
	_ = r.Uint64()
	_ = r.Float64()
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
