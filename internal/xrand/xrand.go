// Package xrand provides small, fast, splittable pseudo-random number
// generators used throughout snapdyn for deterministic parallel graph and
// stream generation.
//
// The generators are not cryptographically secure. They are chosen for
// speed (a few ALU ops per value), statistical quality adequate for
// synthetic workload generation (splitmix64 / xoshiro-style mixing), and
// splittability: a parent generator can derive independent child streams,
// one per worker goroutine, so parallel generation is deterministic for a
// given seed regardless of scheduling.
package xrand

import "math/bits"

// State is a splitmix64-based generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type State struct {
	s uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *State {
	return &State{s: seed}
}

// mix64 is the splitmix64 output function (Steele, Lea, Flood 2014).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64-bit value.
func (r *State) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

// Uint32 returns the next 32-bit value.
func (r *State) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Float64 returns a value in [0, 1).
func (r *State) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a value in [0, n) using Lemire's nearly-divisionless
// reduction. n must be > 0.
func (r *State) Uint64n(n uint64) uint64 {
	hi, _ := bits.Mul64(r.Uint64(), n)
	return hi
}

// Uint32n returns a value in [0, n). n must be > 0.
func (r *State) Uint32n(n uint32) uint32 {
	return uint32((uint64(r.Uint32()) * uint64(n)) >> 32)
}

// Split derives an independent child generator. The child's stream does
// not overlap the parent's for practical stream lengths because the child
// seed is a full avalanche mix of the parent's next output.
func (r *State) Split() *State {
	return &State{s: mix64(r.Uint64()) ^ 0x6a09e667f3bcc909}
}

// Perm fills p with a pseudo-random permutation of [0, len(p)).
func (r *State) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *State) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
