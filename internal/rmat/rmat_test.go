package rmat

import (
	"testing"

	"snapdyn/internal/edge"
)

func TestValidate(t *testing.T) {
	good := PaperParams(10, 100, 10, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := []Params{
		{Scale: 0, Edges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 32, Edges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, Edges: -1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, Edges: 1, A: 0.5, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, Edges: 1, A: 0, B: 0.5, C: 0.25, D: 0.25},
		{Scale: 4, Edges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Noise: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	p := PaperParams(8, 5000, 100, 42)
	edges, err := Generate(4, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 5000 {
		t.Fatalf("got %d edges, want 5000", len(edges))
	}
	n := uint32(p.NumVertices())
	for _, e := range edges {
		if e.U >= n || e.V >= n {
			t.Fatalf("edge %v out of vertex range %d", e, n)
		}
		if e.T < 1 || e.T > 100 {
			t.Fatalf("edge %v time label out of [1,100]", e)
		}
	}
}

func TestGenerateNoTimestamps(t *testing.T) {
	p := PaperParams(6, 100, 0, 1)
	edges, err := Generate(2, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if e.T != edge.NoTime {
			t.Fatalf("expected no time labels, got %v", e)
		}
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	p := PaperParams(10, 40000, 50, 777)
	a, err := Generate(1, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(8, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs across worker counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p1 := PaperParams(10, 1000, 50, 1)
	p2 := PaperParams(10, 1000, 50, 2)
	a, _ := Generate(2, p1)
	b, _ := Generate(2, p2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical edges", same, len(a))
	}
}

func TestPowerLawSkew(t *testing.T) {
	// With a=0.6 the degree distribution must be heavily skewed: the max
	// out-degree should far exceed the average.
	p := PaperParams(14, 10*(1<<14), 0, 9)
	edges, err := Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	hist := DegreeHistogram(p.NumVertices(), edges)
	maxDeg := len(hist) - 1
	avg := 10.0
	if float64(maxDeg) < 8*avg {
		t.Fatalf("max degree %d too small for power-law shape (avg %v)", maxDeg, avg)
	}
	// And many vertices should have low degree.
	low := 0
	for d := 0; d <= 5 && d < len(hist); d++ {
		low += hist[d]
	}
	if low < p.NumVertices()/2 {
		t.Fatalf("only %d/%d vertices have degree <=5; not power-law shaped", low, p.NumVertices())
	}
}

func TestUniformParamsRoughlyUniform(t *testing.T) {
	p := Params{Scale: 10, Edges: 1 << 16, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Seed: 3}
	edges, err := Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	hist := DegreeHistogram(p.NumVertices(), edges)
	maxDeg := len(hist) - 1
	// Erdos-Renyi-like: max degree should stay near the mean (64), far
	// below power-law blowup.
	if maxDeg > 64*4 {
		t.Fatalf("uniform quadrant max degree %d unexpectedly large", maxDeg)
	}
}

func TestDegreeHistogramTotal(t *testing.T) {
	edges := []edge.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 0}}
	hist := DegreeHistogram(3, edges)
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram covers %d vertices, want 3", total)
	}
	if hist[2] != 1 || hist[1] != 1 || hist[0] != 1 {
		t.Fatalf("unexpected histogram %v", hist)
	}
}

func BenchmarkGenerate(b *testing.B) {
	p := PaperParams(16, 10*(1<<16), 100, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(0, p); err != nil {
			b.Fatal(err)
		}
	}
}
