// Package rmat implements the Recursive MATrix (R-MAT) random graph
// generator of Chakrabarti, Zhan and Faloutsos, the input model used for
// every experiment in the paper. The generator samples each edge by
// recursively descending a 2^k x 2^k adjacency matrix, choosing one of the
// four quadrants with probabilities (a, b, c, d) at every level. The
// paper's shaping parameters are a=0.6, b=0.15, c=0.15, d=0.10, which
// yield a power-law degree distribution with maximum out-degree O(n^0.6).
//
// Generation is deterministic for a given seed and parallel: the edge
// range is split among workers, each with an independently split PRNG.
package rmat

import (
	"fmt"

	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/xrand"
)

// Params configures a generation run.
type Params struct {
	// Scale is k in n = 2^k vertices.
	Scale int
	// Edges is m, the number of edge tuples to sample.
	Edges int
	// A, B, C, D are the quadrant probabilities; they must be positive
	// and sum to 1 (within 1e-9).
	A, B, C, D float64
	// TimeMax, when > 0, assigns each edge a uniform random time label in
	// [1, TimeMax]. When 0, all labels are edge.NoTime.
	TimeMax uint32
	// Seed makes the run reproducible.
	Seed uint64
	// Noise perturbs the quadrant probabilities by ±Noise/2 per level to
	// avoid staircase artifacts; 0 disables. Typical: 0.1.
	Noise float64
}

// PaperParams returns the paper's configuration: a=0.6 b=0.15 c=0.15
// d=0.10, m edges over 2^scale vertices, time labels in [1, timeMax].
func PaperParams(scale, edges int, timeMax uint32, seed uint64) Params {
	return Params{
		Scale: scale, Edges: edges,
		A: 0.6, B: 0.15, C: 0.15, D: 0.10,
		TimeMax: timeMax, Seed: seed, Noise: 0.1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Scale < 1 || p.Scale > 31 {
		return fmt.Errorf("rmat: scale %d out of range [1,31]", p.Scale)
	}
	if p.Edges < 0 {
		return fmt.Errorf("rmat: negative edge count %d", p.Edges)
	}
	sum := p.A + p.B + p.C + p.D
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 || sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("rmat: quadrant probabilities (%v,%v,%v,%v) must be positive and sum to 1",
			p.A, p.B, p.C, p.D)
	}
	if p.Noise < 0 || p.Noise >= 1 {
		return fmt.Errorf("rmat: noise %v out of range [0,1)", p.Noise)
	}
	return nil
}

// NumVertices returns n = 2^Scale.
func (p Params) NumVertices() int { return 1 << p.Scale }

// Generate samples p.Edges edge tuples in parallel. workers <= 0 uses
// GOMAXPROCS. The output is deterministic for a given seed and
// independent of the worker count.
func Generate(workers int, p Params) ([]edge.Edge, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	edges := make([]edge.Edge, p.Edges)
	if p.Edges == 0 {
		return edges, nil
	}
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	// Deterministic independent of scheduling: one generator per fixed
	// block of edges, derived from the seed by block index.
	const block = 1 << 14
	nblocks := (p.Edges + block - 1) / block
	par.ForDynamic(workers, nblocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			r := xrand.New(p.Seed ^ (0x9e3779b97f4a7c15 * uint64(b+1)))
			lo := b * block
			hi := min(lo+block, p.Edges)
			for i := lo; i < hi; i++ {
				edges[i] = sampleEdge(r, p)
			}
		}
	})
	return edges, nil
}

// sampleEdge draws one edge by recursive quadrant descent.
func sampleEdge(r *xrand.State, p Params) edge.Edge {
	var u, v uint32
	a, b, c := p.A, p.B, p.C
	for lvl := 0; lvl < p.Scale; lvl++ {
		al, bl, cl := a, b, c
		if p.Noise > 0 {
			// Multiplicative noise per level, renormalized.
			na := al * (1 - p.Noise/2 + p.Noise*r.Float64())
			nb := bl * (1 - p.Noise/2 + p.Noise*r.Float64())
			nc := cl * (1 - p.Noise/2 + p.Noise*r.Float64())
			nd := (1 - al - bl - cl) * (1 - p.Noise/2 + p.Noise*r.Float64())
			s := na + nb + nc + nd
			al, bl, cl = na/s, nb/s, nc/s
		}
		f := r.Float64()
		u <<= 1
		v <<= 1
		switch {
		case f < al:
			// top-left: no bits set
		case f < al+bl:
			v |= 1
		case f < al+bl+cl:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	var t uint32
	if p.TimeMax > 0 {
		t = 1 + r.Uint32n(p.TimeMax)
	}
	return edge.Edge{U: u, V: v, T: t}
}

// DegreeHistogram returns out-degree counts for the edge list over n
// vertices: hist[d] = number of vertices with out-degree d, up to the
// maximum degree encountered.
func DegreeHistogram(n int, edges []edge.Edge) []int {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.U]++
	}
	maxd := 0
	for _, d := range deg {
		if d > maxd {
			maxd = d
		}
	}
	hist := make([]int, maxd+1)
	for _, d := range deg {
		hist[d]++
	}
	return hist
}
