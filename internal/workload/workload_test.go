package workload

import (
	"path/filepath"
	"testing"
	"time"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Vertices: 1 << 10, ZipfS: 1.2, Seed: 42}
	a, b := NewGenerator(cfg), NewGenerator(cfg)
	for i := 0; i < 1000; i++ {
		if oa, ob := a.Next(), b.Next(); oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
	// A different seed must produce a different stream.
	c := NewGenerator(Config{Vertices: 1 << 10, ZipfS: 1.2, Seed: 43})
	same := 0
	a = NewGenerator(cfg)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical ops", same)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher s concentrates traffic: the most popular source's share
	// must grow with the exponent, and s=0 must be roughly uniform.
	const n, draws = 1 << 10, 20000
	top := func(s float64) float64 {
		g := NewGenerator(Config{Vertices: n, ZipfS: s, Mix: Mix{BFS: 1}, Seed: 7})
		counts := make(map[uint32]int)
		for i := 0; i < draws; i++ {
			counts[g.Next().U]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / draws
	}
	t0, t08, t12 := top(0), top(0.8), top(1.2)
	if !(t0 < t08 && t08 < t12) {
		t.Fatalf("top-source share not increasing in s: %.4f (0), %.4f (0.8), %.4f (1.2)", t0, t08, t12)
	}
	if t0 > 0.01 {
		t.Fatalf("uniform top share %.4f, want < 1%%", t0)
	}
	if t12 < 0.05 {
		t.Fatalf("s=1.2 top share %.4f, want >= 5%%", t12)
	}
}

func TestMixProportions(t *testing.T) {
	g := NewGenerator(Config{Vertices: 64, Mix: Mix{BFS: 1, SSSP: 1}, Seed: 1})
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[g.Next().Kind]++
	}
	if counts["connected"] != 0 || counts["components"] != 0 {
		t.Fatalf("zero-weight kinds drawn: %+v", counts)
	}
	if counts["bfs"] < 1600 || counts["sssp"] < 1600 {
		t.Fatalf("even two-way mix came out %+v", counts)
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	mk := func() (*Generator, *Generator) {
		p := NewGenerator(Config{Vertices: 256, ZipfS: 0.8, Seed: 5})
		return p.Split(), p.Split()
	}
	a1, a2 := mk()
	b1, b2 := mk()
	for i := 0; i < 200; i++ {
		if a1.Next() != b1.Next() || a2.Next() != b2.Next() {
			t.Fatal("split children not reproducible across runs")
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rec, err := NewRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Kind: "bfs", U: 3},
		{Kind: "sssp", U: 9, Delta: 40},
		{Kind: "connected", U: 1, V: 2},
		{Kind: "components"},
	}
	for _, op := range want {
		rec.RecordQuery(op.Kind, op.U, op.V, op.Delta)
	}
	if rec.Len() != len(want) {
		t.Fatalf("recorder Len = %d, want %d", rec.Len(), len(want))
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	// Plain Poisson at 1000/s: the mean gap over many draws must be
	// close to 1ms.
	a := NewArrivals(1000, 0, 0, 0, 11)
	var sum time.Duration
	const draws = 20000
	for i := 0; i < draws; i++ {
		sum += a.Next()
	}
	mean := sum / draws
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Fatalf("mean gap %v, want ~1ms", mean)
	}
}

func TestArrivalsBursty(t *testing.T) {
	// With bursts on, gaps drawn in the on state are ~8x shorter: the
	// gap distribution must be visibly bimodal — compare the mean gap
	// against plain Poisson at the same base rate.
	plain := NewArrivals(1000, 0, 0, 0, 13)
	burst := NewArrivals(1000, 8, 20*time.Millisecond, 20*time.Millisecond, 13)
	var ps, bs time.Duration
	const draws = 20000
	for i := 0; i < draws; i++ {
		ps += plain.Next()
		bs += burst.Next()
	}
	// Equal on/off holding and 8x burst rate: most arrivals land in
	// bursts, so the mean gap shrinks well below the calm mean.
	if bs >= ps*3/4 {
		t.Fatalf("bursty mean gap %v not below 3/4 of plain %v", bs/draws, ps/draws)
	}
	// Determinism: same seed, same gaps.
	b2 := NewArrivals(1000, 8, 20*time.Millisecond, 20*time.Millisecond, 13)
	b1 := NewArrivals(1000, 8, 20*time.Millisecond, 20*time.Millisecond, 13)
	for i := 0; i < 100; i++ {
		if b1.Next() != b2.Next() {
			t.Fatal("arrivals not deterministic for a fixed seed")
		}
	}
}
