// Package workload models the serving layer's traffic: skewed source
// popularity (Zipf with tunable exponent, including the s < 1 range
// math/rand's sampler refuses), a weighted query-type mix, and bursty
// open-loop arrivals (an on-off modulated Poisson process), all
// deterministically seeded through internal/xrand so a benchmark run
// is reproducible bit-for-bit from its seed.
//
// It also owns the query-trace wire format: a Recorder tees every
// query a live snapserve receives into a JSONL trace file
// (qserve.QueryRecorder), and ReadTrace + Apply replay a captured
// trace against any qserve.Engine — the record/replay loop that makes
// a production regression reproducible from its traffic.
package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"snapdyn/internal/qserve"
	"snapdyn/internal/xrand"
)

// Op is one query in wire form — one JSONL line of a trace.
type Op struct {
	Kind string `json:"kind"` // "bfs", "sssp", "connected", "components"
	U    uint32 `json:"u,omitempty"`
	V    uint32 `json:"v,omitempty"`
	// Delta is the SSSP bucket width (0 = the engine's heuristic
	// default — the serving-friendly choice, see qserve.SSSP).
	Delta int64 `json:"delta,omitempty"`
}

// Mix weighs the query types. Zero-valued fields get no traffic; an
// all-zero Mix defaults to DefaultMix.
type Mix struct {
	BFS        float64
	SSSP       float64
	Connected  float64
	Components float64
}

// DefaultMix is a read-heavy analysis profile: mostly BFS-shaped
// lookups, some weighted distance queries, occasional pair checks,
// and a rare full-graph component census.
var DefaultMix = Mix{BFS: 0.55, SSSP: 0.25, Connected: 0.18, Components: 0.02}

func (m Mix) total() float64 { return m.BFS + m.SSSP + m.Connected + m.Components }

// Config parameterizes a generator.
type Config struct {
	// Vertices is the id space queries draw sources from.
	Vertices int
	// ZipfS is the popularity exponent: vertex of popularity rank k is
	// drawn with probability proportional to 1/k^s. 0 is uniform; 0.8
	// is web-like; 1.2 concentrates most traffic on a few hot sources.
	// Any s >= 0 is accepted (math/rand.Zipf requires s > 1; skewed
	// serving traffic lives on both sides of 1).
	ZipfS float64
	// Mix weighs the query types (zero value = DefaultMix).
	Mix Mix
	// Seed makes the stream deterministic; same seed, same queries.
	Seed uint64
}

// Generator draws a deterministic stream of queries. Not safe for
// concurrent use: give each load goroutine its own (Split derives an
// independent child stream).
type Generator struct {
	cfg  Config
	rng  *xrand.State
	cum  []float64 // Zipf rank CDF; nil when uniform
	rank []uint32  // popularity rank -> vertex id
	mix  [4]float64
}

// NewGenerator builds a generator. The Zipf CDF is one table of
// len = Vertices shared by every Split child.
func NewGenerator(cfg Config) *Generator {
	if cfg.Vertices <= 0 {
		panic("workload: Vertices must be positive")
	}
	if cfg.Mix.total() <= 0 {
		cfg.Mix = DefaultMix
	}
	g := &Generator{cfg: cfg, rng: xrand.New(cfg.Seed)}
	t := cfg.Mix.total()
	g.mix[0] = cfg.Mix.BFS / t
	g.mix[1] = g.mix[0] + cfg.Mix.SSSP/t
	g.mix[2] = g.mix[1] + cfg.Mix.Connected/t
	g.mix[3] = 1
	if cfg.ZipfS > 0 {
		n := cfg.Vertices
		g.cum = make([]float64, n)
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += math.Pow(float64(k+1), -cfg.ZipfS)
			g.cum[k] = sum
		}
		for k := range g.cum {
			g.cum[k] /= sum
		}
		// Which vertices are hot is an arbitrary property of the graph:
		// scatter the popularity ranks over the id space so rank 1 is
		// not always vertex 0.
		perm := make([]int, n)
		g.rng.Perm(perm)
		g.rank = make([]uint32, n)
		for k, v := range perm {
			g.rank[k] = uint32(v)
		}
	}
	return g
}

// Split derives an independent generator sharing the popularity tables
// — one per load goroutine, deterministic regardless of scheduling.
func (g *Generator) Split() *Generator {
	ng := *g
	ng.rng = g.rng.Split()
	return &ng
}

// source draws one vertex by popularity.
func (g *Generator) source() uint32 {
	if g.cum == nil {
		return g.rng.Uint32n(uint32(g.cfg.Vertices))
	}
	u := g.rng.Float64()
	k := sort.SearchFloat64s(g.cum, u)
	if k >= len(g.rank) {
		k = len(g.rank) - 1
	}
	return g.rank[k]
}

// Next draws the next query.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	switch {
	case r < g.mix[0]:
		return Op{Kind: "bfs", U: g.source()}
	case r < g.mix[1]:
		return Op{Kind: "sssp", U: g.source()}
	case r < g.mix[2]:
		return Op{Kind: "connected", U: g.source(), V: g.source()}
	default:
		return Op{Kind: "components"}
	}
}

// Apply runs op against the engine, returning the reply epoch. Unknown
// kinds are an error (a trace from a newer build), engine errors pass
// through (shed and stale are the caller's business).
func Apply(eng qserve.Engine, op Op) (uint64, error) {
	switch op.Kind {
	case "bfs":
		r, err := eng.BFS(op.U)
		return r.Epoch, err
	case "sssp":
		r, err := eng.SSSP(op.U, op.Delta)
		return r.Epoch, err
	case "connected":
		r, err := eng.Connected(op.U, op.V)
		return r.Epoch, err
	case "components":
		r, err := eng.Components()
		return r.Epoch, err
	default:
		return 0, fmt.Errorf("workload: unknown op kind %q", op.Kind)
	}
}

// Recorder tees queries into a JSONL trace file. It implements
// qserve.QueryRecorder; install with Server.SetRecorder. Writes are
// buffered and serialized; Close flushes (graceful shutdown must call
// it, or the trace tail is lost with the buffer).
type Recorder struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewRecorder creates (truncates) the trace file at path.
func NewRecorder(path string) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	return &Recorder{f: f, w: w, enc: json.NewEncoder(w)}, nil
}

// RecordQuery appends one query to the trace. The first write error
// sticks and silences the rest (Close reports it): tracing must never
// take down serving.
func (r *Recorder) RecordQuery(kind string, u, v uint32, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if err := r.enc.Encode(Op{Kind: kind, U: u, V: v, Delta: delta}); err != nil {
		r.err = err
		return
	}
	r.n++
}

// Len reports the number of queries recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Close flushes and closes the trace, reporting the first error the
// recorder hit.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.err
	if e := r.w.Flush(); err == nil {
		err = e
	}
	if e := r.f.Close(); err == nil {
		err = e
	}
	return err
}

// ReadTrace loads a JSONL trace written by Recorder.
func ReadTrace(path string) ([]Op, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ops []Op
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var op Op
		if err := json.Unmarshal(line, &op); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", len(ops)+1, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
