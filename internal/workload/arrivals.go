package workload

import (
	"math"
	"time"

	"snapdyn/internal/xrand"
)

// Arrivals is a bursty open-loop arrival process: an on-off modulated
// Poisson stream. In the off (calm) state arrivals are Poisson at
// Rate; in the on (burst) state at Rate*Burst; the process holds each
// state for an exponentially distributed duration (OnMean / OffMean)
// and alternates. Burst <= 1 degenerates to plain Poisson at Rate.
//
// Open-loop means the gaps are drawn independently of service times:
// the driver sends on schedule whether or not the server has caught
// up, which is what exposes queueing collapse — a closed loop would
// politely slow down and hide it.
type Arrivals struct {
	rate    float64
	burst   float64
	onMean  time.Duration
	offMean time.Duration

	rng  *xrand.State
	on   bool
	left time.Duration // remaining holding time in the current state
}

// NewArrivals builds a process with base rate arrivals/second. rate
// must be positive; burst <= 1 or non-positive holding means disables
// bursting.
func NewArrivals(rate, burst float64, onMean, offMean time.Duration, seed uint64) *Arrivals {
	if rate <= 0 {
		panic("workload: arrival rate must be positive")
	}
	a := &Arrivals{rate: rate, burst: burst, onMean: onMean, offMean: offMean,
		rng: xrand.New(seed)}
	if burst <= 1 || onMean <= 0 || offMean <= 0 {
		a.burst = 0 // plain Poisson
	} else {
		a.left = a.exp(offMean) // start calm
	}
	return a
}

// exp draws an exponential duration with the given mean.
func (a *Arrivals) exp(mean time.Duration) time.Duration {
	u := a.rng.Float64()
	return time.Duration(-math.Log(1-u) * float64(mean))
}

// Next returns the gap before the next arrival, advancing the on-off
// state by the gap (state flips land on arrival boundaries — a
// harness-grade approximation of the continuous process).
func (a *Arrivals) Next() time.Duration {
	r := a.rate
	if a.burst > 1 {
		if a.on {
			r *= a.burst
		}
		for a.left <= 0 {
			a.on = !a.on
			if a.on {
				a.left += a.exp(a.onMean)
			} else {
				a.left += a.exp(a.offMean)
			}
		}
	}
	gap := a.exp(time.Duration(float64(time.Second) / r))
	a.left -= gap
	return gap
}
