package shard

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/par"
)

// NotVisited marks an unreached vertex in a BFS level array — the same
// sentinel the single-shard traversal engine uses, so level arrays are
// directly comparable.
const NotVisited = int32(-1)

// Scratch is the reusable arena for scatter-gather queries over one
// fleet's pinned view set: the global level/distance/label arrays, the
// per-shard frontiers, the P×P frontier-exchange buckets, and the
// cached per-shard weighted views for SSSP. Buffers are (re)sized on
// use for whatever shard count and vertex count the views present. A
// Scratch must not be shared by concurrent queries; the slices a query
// returns are overwritten by the next query on the same Scratch.
type Scratch struct {
	// BFS state: one frontier per shard (owned vertices only) and the
	// exchange matrix xbuf[s][d] = vertices shard s discovered that
	// shard d owns, swapped into cur[d] at each level barrier.
	level []int32
	cur   [][]uint32
	xbuf  [][][]uint32

	// Components state.
	comp []uint32

	// Stats reduction slots, one per shard.
	arcs []int64
	maxd []int64

	sp ssspState
}

// NewScratch returns an empty arena; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

// ensureExchange sizes the frontier-exchange machinery for p shards.
func (sc *Scratch) ensureExchange(p int) {
	if len(sc.cur) != p {
		sc.cur = make([][]uint32, p)
		xb := make([][][]uint32, p)
		for s := range xb {
			xb[s] = make([][]uint32, p)
		}
		sc.xbuf = xb
	}
}

func ensureInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// BFS runs a level-synchronous scatter-gather breadth-first search from
// src over the pinned per-shard views, returning the scratch-owned
// level array plus the reached-vertex and level counts. Each level,
// every shard expands its owned slice of the frontier against its local
// CSR and claims discoveries with a CAS on the shared level array;
// remote discoveries are bucketed by owner and swapped at the level
// barrier. Level values are order-independent, so the returned array is
// identical to the single-shard engine's. The traversal is push-only
// (top-down): direction-optimizing needs a global reverse view no shard
// has.
func (sc *Scratch) BFS(views []*csr.Graph, src uint32) ([]int32, int, int) {
	return sc.bfs(views, src, ^uint32(0), -1)
}

// STConnected reports whether target is reachable from src, and at how
// many hops, stopping at the first level barrier that claims target.
func (sc *Scratch) STConnected(views []*csr.Graph, src, target uint32) (hops int32, ok bool) {
	level, _, _ := sc.bfs(views, src, target, -1)
	h := level[target]
	return h, h != NotVisited
}

// KHop counts the vertices within k hops of src (src included): the
// scatter-gather BFS truncated at depth k, so arcs beyond the horizon
// are never expanded. The level array it leaves in the scratch matches
// the single-shard engine's stopped traversal bit for bit.
func (sc *Scratch) KHop(views []*csr.Graph, src uint32, k int32) int {
	_, reached, _ := sc.bfs(views, src, ^uint32(0), k)
	return reached
}

// bfs is the shared scatter-gather traversal core: target (when not
// ^0) stops it at the first barrier that claims the target, maxDepth
// (when >= 0) stops it after expanding that many levels.
func (sc *Scratch) bfs(views []*csr.Graph, src uint32, target uint32, maxDepth int32) ([]int32, int, int) {
	p := len(views)
	n := views[0].N
	sc.ensureExchange(p)
	sc.level = ensureInt32(sc.level, n)
	level := sc.level
	par.ForBlock(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			level[i] = NotVisited
		}
	})
	level[src] = 0
	cur := sc.cur
	for s := range cur {
		cur[s] = cur[s][:0]
	}
	cur[int(src)%p] = append(cur[int(src)%p], src)

	reached, levels, size := 1, 0, 1
	for depth := int32(1); size > 0; depth++ {
		if maxDepth >= 0 && depth > maxDepth {
			break
		}
		levels++
		par.Workers(p, func(s int) {
			g := views[s]
			xb := sc.xbuf[s]
			for _, u := range cur[s] {
				lo, hi := g.Offsets[u], g.Offsets[u+1]
				for a := lo; a < hi; a++ {
					v := g.Adj[a]
					if atomic.LoadInt32(&level[v]) == NotVisited &&
						atomic.CompareAndSwapInt32(&level[v], NotVisited, depth) {
						xb[int(v)%p] = append(xb[int(v)%p], v)
					}
				}
			}
		})
		// Gather at the barrier: shard d's next frontier is every
		// shard's bucket of d-owned discoveries.
		size = 0
		for d := 0; d < p; d++ {
			f := cur[d][:0]
			for s := 0; s < p; s++ {
				f = append(f, sc.xbuf[s][d]...)
				sc.xbuf[s][d] = sc.xbuf[s][d][:0]
			}
			cur[d] = f
			size += len(f)
		}
		reached += size
		if target != ^uint32(0) && level[target] != NotVisited {
			break
		}
	}
	return level, reached, levels
}

// Components labels weakly-connected components over the pinned views
// with the same hook-and-compress iteration as cc.Components, the hook
// phase fanned out by shard ownership: shard s hooks over the arcs of
// its owned vertices (strides s, s+P, ... — exactly the spans its local
// CSR holds), the compress phase pointer-jumps the shared label array
// block-parallel. Both converge to the component-minimum vertex id, so
// the returned labels are identical to the single-shard kernel's. The
// label array is scratch-owned.
func (sc *Scratch) Components(views []*csr.Graph) []uint32 {
	p := len(views)
	n := views[0].N
	if cap(sc.comp) < n {
		sc.comp = make([]uint32, n)
	} else {
		sc.comp = sc.comp[:n]
	}
	comp := sc.comp
	par.ForBlock(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			comp[i] = uint32(i)
		}
	})
	if n == 0 {
		return comp
	}
	for {
		var changed atomic.Bool
		par.Workers(p, func(s int) {
			g := views[s]
			for u := s; u < n; u += p {
				lo, hi := g.Offsets[u], g.Offsets[u+1]
				if lo == hi {
					continue
				}
				cu := atomic.LoadUint32(&comp[u])
				for a := lo; a < hi; a++ {
					cv := atomic.LoadUint32(&comp[g.Adj[a]])
					if cu == cv {
						continue
					}
					hi32, lo32 := cu, cv
					if hi32 < lo32 {
						hi32, lo32 = lo32, hi32
					}
					if atomic.CompareAndSwapUint32(&comp[hi32], hi32, lo32) {
						changed.Store(true)
					}
					cu = atomic.LoadUint32(&comp[u])
				}
			}
		})
		par.ForBlock(p, n, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				c := atomic.LoadUint32(&comp[u])
				for {
					cc := atomic.LoadUint32(&comp[c])
					if cc == c {
						break
					}
					c = cc
				}
				atomic.StoreUint32(&comp[u], c)
			}
		})
		if !changed.Load() {
			return comp
		}
	}
}

// Stats summarizes a pinned view set by per-shard fan-out/reduce.
type Stats struct {
	Vertices  int
	Arcs      int64
	MaxDegree int64
}

// Stats fans a degree scan out across the shards and reduces arc count
// (sum) and max degree (max). Non-owned vertices have empty spans in
// every shard, so the per-shard maxima cover exactly the global graph.
func (sc *Scratch) Stats(views []*csr.Graph) Stats {
	p := len(views)
	if len(sc.arcs) != p {
		sc.arcs = make([]int64, p)
		sc.maxd = make([]int64, p)
	}
	par.Workers(p, func(s int) {
		sc.arcs[s] = views[s].NumEdges()
		sc.maxd[s] = views[s].MaxDegree()
	})
	st := Stats{Vertices: views[0].N}
	for s := 0; s < p; s++ {
		st.Arcs += sc.arcs[s]
		if sc.maxd[s] > st.MaxDegree {
			st.MaxDegree = sc.maxd[s]
		}
	}
	return st
}
