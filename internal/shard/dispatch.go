package shard

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/qcache"
	"snapdyn/internal/qserve"
)

// fleetKernel executes one registered query kind over a pinned
// per-shard view set; keep=true copies payload slices out of pooled
// scratch for the cache.
type fleetKernel func(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error)

// fleetKernels is the fleet's kernel table, indexed by qserve's dense
// spec id. A nil entry means the kind is not implemented on the
// scatter-gather engine (Query answers ErrUnsupported — sampled
// betweenness, for instance, needs a resident global CSR no shard
// has). qserve's registry init runs before this package's (shard
// imports qserve), so the spec ids are final here.
var fleetKernels []fleetKernel

func init() {
	fleetKernels = make([]fleetKernel, qserve.NumSpecs())
	set := func(sp *qserve.Spec, k fleetKernel) { fleetKernels[sp.ID()] = k }
	set(qserve.SpecBFS, func(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error) {
		return e.bfsValue(views, uint32(a.A), keep), nil
	})
	set(qserve.SpecSSSP, func(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error) {
		return e.ssspValue(views, uint32(a.A), int64(a.B), keep), nil
	})
	set(qserve.SpecConnected, runFleetConnected)
	set(qserve.SpecComponents, func(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error) {
		return e.componentsValue(views, keep), nil
	})
	set(qserve.SpecClustering, func(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error) {
		return e.clusteringValue(views, keep), nil
	})
	set(qserve.SpecKHop, func(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error) {
		return e.khopValue(views, uint32(a.A), int32(a.B), keep), nil
	})
	set(qserve.SpecPageRank, func(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error) {
		return e.pagerankValue(views, qserve.PageRankTol(a), keep), nil
	})
}

// Query runs one registered kind against the pinned per-shard snapshot
// set — the fleet mirror of the single-snapshot executor's generic
// path, with identical admission, validation, quick-answer, and
// caching flow. The cache generation is keyed by the whole pinned view
// set, so a refresh on any shard retires it.
func (e *Executor) Query(sp *qserve.Spec, a qserve.Args) (qserve.Result, error) {
	p, epoch, gen, err := e.checkout()
	if err != nil {
		return qserve.Result{}, err
	}
	defer e.release(p)
	if err := sp.Validate(a, e.fleet.NumVertices()); err != nil {
		return qserve.Result{}, err
	}
	res := qserve.Result{Epoch: epoch}
	if val, ok := sp.Quick(a); ok {
		res.Val = val
		return res, nil
	}
	run := fleetKernels[sp.ID()]
	if run == nil {
		return qserve.Result{}, qserve.ErrUnsupported
	}
	k, cacheable := sp.CacheKey(a)
	if !cacheable {
		if a.Live {
			res.Cache = qserve.CacheLive
		}
		val, err := run(e, p.views, a, false)
		if err != nil {
			return qserve.Result{}, err
		}
		res.Val = val
		return res, nil
	}
	if val, ok := gen.Lookup(k); ok {
		res.Val, res.Cache = val, qserve.CacheHit
		return res, nil
	}
	if gen == nil {
		val, err := run(e, p.views, a, false)
		if err != nil {
			return qserve.Result{}, err
		}
		res.Val = val
		return res, nil
	}
	val, err := gen.Do(k, func() (qcache.Value, error) {
		return run(e, p.views, a, true)
	})
	if err != nil {
		return qserve.Result{}, err
	}
	res.Val, res.Cache = val, qserve.CacheMiss
	return res, nil
}

// runFleetConnected answers st-connectivity: from the merged live
// forests when a.Live (no snapshot involved, hop count unavailable),
// else by the early-exiting scatter-gather traversal.
func runFleetConnected(e *Executor, views []*csr.Graph, a qserve.Args, keep bool) (qcache.Value, error) {
	if a.Live {
		lf := e.live
		if lf == nil {
			return qcache.Value{}, qserve.ErrUnsupported
		}
		return qcache.Value{Flag: lf.Connected(uint32(a.A), uint32(a.B)), N1: -1}, nil
	}
	return e.connValue(views, uint32(a.A), uint32(a.B)), nil
}

// --- typed convenience methods, generated from the registry exactly
// like the single-shard executor's ---

// BFS runs a scatter-gather breadth-first search from src.
func (e *Executor) BFS(src uint32) (qserve.BFSReply, error) {
	a := qserve.Args{A: uint64(src)}
	r, err := e.Query(qserve.SpecBFS, a)
	if err != nil {
		return qserve.BFSReply{}, err
	}
	return qserve.BFSReplyFrom(a, r), nil
}

// SSSP runs sharded delta-stepping from src with arc time labels as
// weights, like the single-shard engine (delta <= 0 derives the
// global heuristic width).
func (e *Executor) SSSP(src uint32, delta int64) (qserve.SSSPReply, error) {
	a := qserve.Args{A: uint64(src), B: uint64(delta)}
	r, err := e.Query(qserve.SpecSSSP, a)
	if err != nil {
		return qserve.SSSPReply{}, err
	}
	return qserve.SSSPReplyFrom(a, r), nil
}

// Connected answers st-connectivity with an early-exiting
// scatter-gather traversal from u.
func (e *Executor) Connected(u, v uint32) (qserve.ConnReply, error) {
	a := qserve.Args{A: uint64(u), B: uint64(v)}
	r, err := e.Query(qserve.SpecConnected, a)
	if err != nil {
		return qserve.ConnReply{}, err
	}
	return qserve.ConnReplyFrom(a, r), nil
}

// ConnectedLive answers st-connectivity from the merged per-shard live
// forests (EnableLive), reflecting every acknowledged ingest without
// waiting for shard refreshes. Hops is -1: the forests prove
// connectivity, not distance.
func (e *Executor) ConnectedLive(u, v uint32) (qserve.ConnReply, error) {
	a := qserve.Args{A: uint64(u), B: uint64(v), Live: true}
	r, err := e.Query(qserve.SpecConnected, a)
	if err != nil {
		return qserve.ConnReply{}, err
	}
	return qserve.ConnReplyFrom(a, r), nil
}

// Components labels weakly-connected components by cross-shard label
// merge; the label array and census are pool-owned.
func (e *Executor) Components() (qserve.ComponentsReply, error) {
	a := qserve.Args{}
	r, err := e.Query(qserve.SpecComponents, a)
	if err != nil {
		return qserve.ComponentsReply{}, err
	}
	return qserve.ComponentsReplyFrom(r), nil
}

// Clustering counts triangles and averages local clustering
// coefficients over the pinned view set, bit-identical to the
// single-shard engine (the aggregation order is original-id order on
// both sides).
func (e *Executor) Clustering() (qserve.ClusteringReply, error) {
	a := qserve.Args{}
	r, err := e.Query(qserve.SpecClustering, a)
	if err != nil {
		return qserve.ClusteringReply{}, err
	}
	return qserve.ClusteringReplyFrom(r), nil
}

// KHop counts the vertices within k hops of src.
func (e *Executor) KHop(src, k uint32) (qserve.KHopReply, error) {
	a := qserve.Args{A: uint64(src), B: uint64(k)}
	r, err := e.Query(qserve.SpecKHop, a)
	if err != nil {
		return qserve.KHopReply{}, err
	}
	return qserve.KHopReplyFrom(a, r), nil
}

// PageRank solves PageRank to the given residual tolerance (tol <= 0
// picks the default) by sharded power iteration — same fixed point as
// the single-shard push solve, agreeing to within a
// tolerance-proportional error (the documented PageRank exception to
// bit-identity).
func (e *Executor) PageRank(tol float64) (qserve.PageRankReply, error) {
	a := qserve.PageRankArgs(tol)
	r, err := e.Query(qserve.SpecPageRank, a)
	if err != nil {
		return qserve.PageRankReply{}, err
	}
	return qserve.PageRankReplyFrom(a, r), nil
}
