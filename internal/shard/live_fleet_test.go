package shard

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"snapdyn/internal/edge"
	"snapdyn/internal/qserve"
	"snapdyn/internal/stream"
	"snapdyn/internal/xrand"
)

// TestFleetLiveQuiesce is the fleet's consistency oracle: per-shard
// forests joined by label merge must agree exactly with the fleet's
// next published snapshot set — component count and sampled pair
// connectivity — after every churn round (inserts and deletes, tree
// edges included).
func TestFleetLiveQuiesce(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		n, ups := testUpdates(t, 8, 6, 31)
		ups = stream.Mirror(ups)
		f := testFleet(n, p, ups)
		ex := NewExecutor(f, qserve.Config{Undirected: true})
		ex.EnableLive()

		r := xrand.New(uint64(900 + p))
		var alive []edge.Edge
		nextT := uint32(1 << 20)
		for round := 0; round < 6; round++ {
			var batch []edge.Update
			dels := 15
			if dels > len(alive) {
				dels = len(alive)
			}
			for i := 0; i < dels; i++ {
				j := int(r.Uint32n(uint32(len(alive))))
				e := alive[j]
				alive[j] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				batch = append(batch, edge.Update{Edge: e, Op: edge.Delete})
			}
			for i := 0; i < 25; i++ {
				u, v := r.Uint32n(uint32(n)), r.Uint32n(uint32(n))
				if u == v {
					continue
				}
				e := edge.Edge{U: u, V: v, T: nextT}
				nextT++
				alive = append(alive, e)
				batch = append(batch, edge.Update{Edge: e, Op: edge.Insert})
			}
			if _, err := ex.Ingest(1, stream.Mirror(batch)); err != nil {
				t.Fatal(err)
			}

			f.Refresh(2)
			snap, err := ex.Components()
			if err != nil {
				t.Fatal(err)
			}
			if live := ex.Live().Components(); live != snap.Components {
				t.Fatalf("shards=%d round %d: merged forests have %d components, snapshot %d",
					p, round, live, snap.Components)
			}
			for i := 0; i < 20; i++ {
				u, v := r.Uint32n(uint32(n)), r.Uint32n(uint32(n))
				lr, err := ex.ConnectedLive(u, v)
				if err != nil {
					t.Fatal(err)
				}
				sr, err := ex.Connected(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if lr.Connected != sr.Connected {
					t.Fatalf("shards=%d round %d: ConnectedLive(%d,%d) = %v, snapshot %v",
						p, round, u, v, lr.Connected, sr.Connected)
				}
				if !lr.Live {
					t.Fatalf("shards=%d: live reply not flagged live: %+v", p, lr)
				}
				if u != v && lr.Hops != -1 {
					t.Fatalf("shards=%d: live reply claims a hop count: %+v", p, lr)
				}
			}
		}
	}
}

// TestFleetLiveUnsupportedUntilEnabled pins the fleet's live contract:
// ErrUnsupported before EnableLive, the reflexive quick answer
// excepted.
func TestFleetLiveUnsupportedUntilEnabled(t *testing.T) {
	n, ups := testUpdates(t, 6, 4, 37)
	f := testFleet(n, 2, stream.Mirror(ups))
	ex := NewExecutor(f, qserve.Config{Undirected: true})

	if _, err := ex.ConnectedLive(1, 2); !errors.Is(err, qserve.ErrUnsupported) {
		t.Fatalf("fleet ConnectedLive before EnableLive: err = %v, want ErrUnsupported", err)
	}
	r, err := ex.ConnectedLive(5, 5)
	if err != nil || !r.Connected || r.Hops != 0 {
		t.Fatalf("reflexive live reply %+v, %v", r, err)
	}
	ex.EnableLive()
	if _, err := ex.ConnectedLive(1, 2); err != nil {
		t.Fatalf("fleet ConnectedLive after EnableLive: %v", err)
	}
}

// TestFleetHTTPQuerySurface serves the fleet executor through the same
// registry-generated HTTP surface as the single-snapshot engine: every
// analytics kind and live connectivity answer over /v1, and the offline
// betweenness job — which needs a resident global CSR no shard has —
// answers 501 unsupported at POST.
func TestFleetHTTPQuerySurface(t *testing.T) {
	n, ups := testUpdates(t, 8, 6, 41)
	f := testFleet(n, 4, stream.Mirror(ups))
	ex := NewExecutor(f, qserve.Config{Undirected: true})
	ex.EnableLive()
	ts := httptest.NewServer(qserve.NewServer(ex, true, 1).Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	for _, tc := range []struct{ kind, params string }{
		{"clustering", ""},
		{"khop", "?src=1&k=2"},
		{"pagerank", ""},
		{"connected", "?u=1&v=2&live=1"},
	} {
		code, env := get("/v1/query/" + tc.kind + tc.params)
		if code != http.StatusOK {
			t.Fatalf("fleet %s%s: status %d (%v)", tc.kind, tc.params, code, env)
		}
		if env["kind"] != tc.kind || env["data"] == nil {
			t.Fatalf("fleet %s%s: envelope %v", tc.kind, tc.params, env)
		}
		if tc.params == "?u=1&v=2&live=1" && env["cache"] != "live" {
			t.Fatalf("fleet live query disposition %v, want live", env["cache"])
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs/betweenness", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("fleet betweenness job: status %d, want 501 (%v)", resp.StatusCode, body)
	}
	obj, _ := body["error"].(map[string]any)
	if obj == nil || obj["code"] != "unsupported" {
		t.Fatalf("fleet betweenness job error body %v", body)
	}
}
