package shard

import (
	"fmt"
	"path/filepath"

	"snapdyn/internal/batcher"
	"snapdyn/internal/durable"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/snapmgr"
)

// DurableFleet is a Fleet whose shards each own a durable store: one
// write-ahead log and checkpoint directory per shard (shard-NNN under
// the configured root), one group-commit batcher per shard. The query
// surface is the embedded Fleet, unchanged; ingest goes through Ingest
// (scatter, per-shard group commit, ack join) so that an acknowledged
// batch is fsynced on every shard that owns part of it.
//
// Crash independence: shards recover independently, each to a prefix of
// its own sub-stream that includes everything it acknowledged. A crash
// between shard acks of one scattered batch can leave the batch
// partially durable — exactly the in-flight window a single store has,
// widened to per-shard granularity. Ingest returns only after every
// shard acked, so a *returned* call is durable everywhere.
type DurableFleet struct {
	*Fleet
	stores []*durable.Store
}

// OpenDurable recovers (or initializes) one durable store per shard
// under dc.Dir/shard-NNN and assembles the fleet over the recovered
// managers. bootstrap seeds fresh directories (scattered by owner);
// recovered shards ignore it — each shard's durable state wins. The
// per-shard Info slice is returned for logs and benchmarks.
//
// dc.Batch/dc.CheckpointEvery/dc.WAL apply to every shard alike; the
// checkpoint cadence is per shard, counted in that shard's updates.
func OpenDurable(n int, cfg Config, bootstrap []edge.Update, dc durable.Config) (*DurableFleet, []*durable.Info, error) {
	p := cfg.Shards
	if p <= 0 {
		p = 1
	}
	expected := cfg.ExpectedEdges
	if expected <= 0 {
		expected = 8 * n
	}
	perShard := expected/p + 1

	// Scatter the bootstrap by the owner rule before any store exists.
	subs := make([][]edge.Update, p)
	for i := range bootstrap {
		s := int(bootstrap[i].U % uint32(p))
		subs[s] = append(subs[s], bootstrap[i])
	}

	f := &DurableFleet{
		Fleet:  &Fleet{n: n, p: p, mgrs: make([]*snapmgr.Manager, p)},
		stores: make([]*durable.Store, p),
	}
	infos := make([]*durable.Info, p)
	for s := 0; s < p; s++ {
		sc := dc
		sc.Dir = filepath.Join(dc.Dir, fmt.Sprintf("shard-%03d", s))
		shardID := s
		newStore := func(n int) dyngraph.Store {
			if cfg.NewStore != nil {
				return cfg.NewStore(shardID, n, perShard)
			}
			return dyngraph.NewHybrid(n, perShard, 0, uint64(shardID)+1)
		}
		ds, info, err := durable.Open(n, cfg.Workers, newStore, subs[s], sc)
		if err != nil {
			for i := 0; i < s; i++ {
				f.stores[i].Close()
			}
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		f.stores[s] = ds
		f.mgrs[s] = ds.Manager()
		infos[s] = info
	}
	return f, infos, nil
}

// Store returns shard s's durable store, for per-shard metrics and
// direct Submit access.
func (f *DurableFleet) Store(s int) *durable.Store { return f.stores[s] }

// Ingest scatters the batch by owner, submits each sub-batch to its
// shard's group-commit batcher, and joins the acks: it returns only
// after every touched shard has fsynced and applied its part. The
// returned fleet ack epoch is the sum of the per-shard ack epochs plus
// the current epochs of untouched shards — wait for it with
// Fleet.WaitEpoch for (coarse) read-your-writes. The first per-shard
// error is returned; other shards may still have committed their parts.
func (f *DurableFleet) Ingest(batch []edge.Update) (uint64, error) {
	subs := f.Scatter(batch, nil)
	acks := make([]*batcher.Ack, f.p)
	for s := 0; s < f.p; s++ {
		if len(subs[s]) == 0 {
			continue
		}
		a, err := f.stores[s].Submit(subs[s])
		if err != nil {
			// Join what was already submitted before reporting.
			for i := 0; i < s; i++ {
				if acks[i] != nil {
					<-acks[i].Done()
				}
			}
			return 0, fmt.Errorf("shard %d: %w", s, err)
		}
		acks[s] = a
	}
	var sum uint64
	var firstErr error
	for s := 0; s < f.p; s++ {
		if acks[s] == nil {
			sum += f.mgrs[s].Epoch()
			continue
		}
		<-acks[s].Done()
		if err := acks[s].Err(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", s, err)
		}
		sum += acks[s].Epoch()
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return sum, nil
}

// Close stops every shard's batcher and auto-refresher, writes final
// checkpoints, and closes the logs. The first error is returned; every
// shard is closed regardless.
func (f *DurableFleet) Close() error {
	var firstErr error
	for _, ds := range f.stores {
		if err := ds.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
