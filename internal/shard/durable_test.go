package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"snapdyn/internal/batcher"
	"snapdyn/internal/durable"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/wal"
)

const durN = 64

func durRandUpdates(rng *rand.Rand, n int) []edge.Update {
	out := make([]edge.Update, n)
	for i := range out {
		u := edge.Update{Edge: edge.Edge{
			U: uint32(rng.Intn(durN)),
			V: uint32(rng.Intn(durN)),
			T: uint32(rng.Intn(4)),
		}}
		if rng.Intn(4) == 0 {
			u.Op = edge.Delete
		}
		out[i] = u
	}
	return out
}

func sortedArcs(s dyngraph.Store) []edge.Edge {
	arcs := durable.Dump(s)
	sort.Slice(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.T < b.T
	})
	return arcs
}

// shardOracle replays batches sequentially into a fresh store matching
// shard s's construction, the per-shard ground truth.
func shardOracle(s int, batches ...[]edge.Update) dyngraph.Store {
	st := dyngraph.NewTracked(dyngraph.NewHybrid(durN, 8*durN/durShards+1, 0, uint64(s)+1))
	for _, b := range batches {
		st.ApplyBatch(2, b)
	}
	return st
}

const durShards = 3

// TestDurableFleetRoundtrip: bootstrap + durable ingest + clean close +
// reopen must reproduce every shard exactly, and fleet ack epochs must
// stay monotone across the restart.
func TestDurableFleetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	boot := durRandUpdates(rng, 200)
	cfg := Config{Shards: durShards, Workers: 2, ExpectedEdges: 8 * durN}
	dc := durable.Config{Dir: dir, Batch: batcher.Config{MaxDelay: time.Millisecond}}

	df, infos, err := OpenDurable(durN, cfg, boot, dc)
	if err != nil {
		t.Fatal(err)
	}
	for s, info := range infos {
		if info.Recovered {
			t.Fatalf("shard %d: fresh dir reported recovery %+v", s, info)
		}
	}
	var stream [][]edge.Update
	var lastEpoch uint64
	for i := 0; i < 20; i++ {
		b := durRandUpdates(rng, 30)
		stream = append(stream, b)
		e, err := df.Ingest(b)
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		// Non-decreasing, not strictly: batches flushed between the same
		// pair of refreshes share their containing epoch.
		if e < lastEpoch {
			t.Fatalf("ack epoch regressed: %d then %d", lastEpoch, e)
		}
		lastEpoch = e
	}
	if err := df.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	df2, infos2, err := OpenDurable(durN, cfg, nil, dc)
	if err != nil {
		t.Fatal(err)
	}
	defer df2.Close()
	for s := 0; s < durShards; s++ {
		if !infos2[s].Recovered {
			t.Fatalf("shard %d: no recovery after clean close", s)
		}
		subs := [][]edge.Update{scatterFor(boot, s)}
		for _, b := range stream {
			subs = append(subs, scatterFor(b, s))
		}
		want := sortedArcs(shardOracle(s, subs...))
		got := sortedArcs(df2.Manager(s).Store())
		if !arcsEqual(got, want) {
			t.Fatalf("shard %d: recovered %d arcs != oracle %d arcs", s, len(got), len(want))
		}
	}
	e2, err := df2.Ingest(durRandUpdates(rng, 10))
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= lastEpoch {
		t.Fatalf("ack epoch regressed across restart: %d then %d", lastEpoch, e2)
	}
}

func scatterFor(batch []edge.Update, s int) []edge.Update {
	var out []edge.Update
	for _, u := range batch {
		if int(u.U%durShards) == s {
			out = append(out, u)
		}
	}
	return out
}

func arcsEqual(a, b []edge.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || reflect.DeepEqual(a, b)
}

// TestDurableFleetCrashRecover kills the whole fleet's filesystem at a
// random moment mid-ingest and checks, per shard, that recovery lands
// on a sub-batch boundary covering everything the fleet acknowledged,
// and that the recovered arcs match a sequential replay of exactly
// that sub-stream prefix.
func TestDurableFleetCrashRecover(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(seed))
			fd := wal.NewFaultDir(seed)
			fd.WriteDelay = time.Duration(rng.Intn(200)) * time.Microsecond
			cfg := Config{Shards: durShards, Workers: 2, ExpectedEdges: 8 * durN}
			dc := durable.Config{
				Dir:             dir,
				CheckpointEvery: uint64(rng.Intn(3)) * 100,
				Batch:           batcher.Config{MaxDelay: 200 * time.Microsecond},
				WAL: wal.Options{
					SegmentBytes: 2048,
					OpenFile:     fd.OpenFile,
					Rename:       fd.Rename,
				},
			}
			df, _, err := OpenDurable(durN, cfg, nil, dc)
			if err != nil {
				t.Fatal(err)
			}

			var stream [][]edge.Update
			acked := 0
			crash := time.AfterFunc(time.Duration(1+rng.Intn(15))*time.Millisecond, fd.Crash)
			for i := 0; i < 60; i++ {
				b := durRandUpdates(rng, 1+rng.Intn(20))
				stream = append(stream, b)
				if _, err := df.Ingest(b); err != nil {
					break
				}
				acked++
			}
			crash.Stop()
			fd.Crash() // ensure the crash happened even if ingest outran the timer
			df.Close()

			// Recovery reopens through the real filesystem: the fault
			// model's job ended at the crash.
			df2, infos, err := OpenDurable(durN, cfg, nil, durable.Config{
				Dir:   dir,
				Batch: batcher.Config{MaxDelay: time.Millisecond},
			})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer df2.Close()

			for s := 0; s < durShards; s++ {
				// Per-shard sub-stream and its cumulative update counts.
				var subs [][]edge.Update
				for _, b := range stream {
					subs = append(subs, scatterFor(b, s))
				}
				lsn := infos[s].LSN
				var cum uint64
				k := 0
				for k < len(subs) && cum < lsn {
					cum += uint64(len(subs[k]))
					k++
				}
				if cum != lsn {
					t.Fatalf("shard %d: recovered LSN %d splits a sub-batch", s, lsn)
				}
				var ackedUpdates uint64
				for i := 0; i < acked; i++ {
					ackedUpdates += uint64(len(subs[i]))
				}
				if lsn < ackedUpdates {
					t.Fatalf("shard %d: recovered LSN %d < acked updates %d", s, lsn, ackedUpdates)
				}
				want := sortedArcs(shardOracle(s, subs[:k]...))
				got := sortedArcs(df2.Manager(s).Store())
				if !arcsEqual(got, want) {
					t.Fatalf("shard %d: recovered arcs diverge from replay of %d sub-batches", s, k)
				}
			}
		})
	}
}
