package shard

import (
	"math"
	"testing"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/qserve"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
)

// singleExecutor builds the single-snapshot reference executor over the
// same update stream a fleet under test ingests.
func singleExecutor(t *testing.T, n int, ups []edge.Update) *qserve.Executor {
	t.Helper()
	mgr := snapmgr.New(2, dyngraph.NewTracked(dyngraph.NewHybrid(n, len(ups), 0, 1)))
	single := qserve.New(mgr, qserve.Config{Undirected: true})
	if _, err := single.Ingest(2, ups); err != nil {
		t.Fatal(err)
	}
	mgr.Refresh(2)
	return single
}

// TestFleetAnalyticsParity extends the single-vs-fleet equivalence
// guarantee to the analytics kinds, across every shard count:
// clustering and k-hop must answer bit-identically (integer counts; the
// float mean is summed in original-id order on both engines), and
// PageRank — the documented exception — within a
// tolerance-proportional band.
func TestFleetAnalyticsParity(t *testing.T) {
	n, ups := testUpdates(t, 9, 8, 21)
	ups = stream.Mirror(ups)
	single := singleExecutor(t, n, ups)

	const tol = 1e-9
	prBound := 10 * float64(n) * tol / (1 - qserve.PageRankDamping)
	wantCl, err := single.Clustering()
	if err != nil {
		t.Fatal(err)
	}
	wantPR, err := single.PageRank(tol)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range shardCounts {
		f := testFleet(n, p, ups)
		ex := NewExecutor(f, qserve.Config{Undirected: true})

		cl, err := ex.Clustering()
		if err != nil {
			t.Fatal(err)
		}
		if cl.Triangles != wantCl.Triangles || cl.Counted != wantCl.Counted || cl.AvgLocal != wantCl.AvgLocal {
			t.Fatalf("shards=%d: Clustering = %+v, single %+v (bit-identical)", p, cl, wantCl)
		}

		for _, src := range []uint32{0, 7, uint32(n / 2), uint32(n - 1)} {
			for _, k := range []uint32{0, 1, 2, 5, 1 << 29} {
				want, err := single.KHop(src, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ex.KHop(src, k)
				if err != nil {
					t.Fatal(err)
				}
				if got.Reached != want.Reached {
					t.Fatalf("shards=%d: KHop(%d,%d) = %d, single %d", p, src, k, got.Reached, want.Reached)
				}
			}
		}

		pr, err := ex.PageRank(tol)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pr.SumRank-wantPR.SumRank) > prBound || math.Abs(pr.MaxRank-wantPR.MaxRank) > prBound {
			t.Fatalf("shards=%d: PageRank = %+v, single %+v (band %v)", p, pr, wantPR, prBound)
		}
		if pr.Iterations <= 0 || pr.Tol != tol {
			t.Fatalf("shards=%d: PageRank metadata %+v implausible", p, pr)
		}
	}
}

// TestFleetAnalyticsCacheHitZeroAlloc extends the fleet's cache-hit
// allocation guard to the analytics kinds: once cached against the
// pinned view set, repeats answer without allocating.
func TestFleetAnalyticsCacheHitZeroAlloc(t *testing.T) {
	n, ups := testUpdates(t, 9, 8, 23)
	ups = stream.Mirror(ups)
	f := testFleet(n, 4, ups)
	ex := NewExecutor(f, qserve.Config{Undirected: true, MaxConcurrent: 1, CacheBytes: 64 << 20})

	warm := func() {
		if _, err := ex.Clustering(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.KHop(1, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.PageRank(0); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	if c := ex.Cache().Counters(); c.Hits < 3 {
		t.Fatalf("warm-up did not hit the cache: %+v", c)
	}

	if a := testing.AllocsPerRun(30, func() {
		if _, err := ex.Clustering(); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Fatalf("fleet cache-hit clustering allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(30, func() {
		if _, err := ex.KHop(1, 3); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Fatalf("fleet cache-hit khop allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(30, func() {
		if _, err := ex.PageRank(0); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Fatalf("fleet cache-hit pagerank allocates %.1f objects/op, want 0", a)
	}
}
