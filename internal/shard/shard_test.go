package shard

import (
	"sync"
	"testing"

	"snapdyn/internal/cc"
	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/qserve"
	"snapdyn/internal/rmat"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
	"snapdyn/internal/stream"
	"snapdyn/internal/traversal"
)

// testUpdates generates a deterministic R-MAT insert stream.
func testUpdates(t *testing.T, scale, edgeFactor int, seed uint64) (int, []edge.Update) {
	t.Helper()
	n := 1 << scale
	edges, err := rmat.Generate(2, rmat.PaperParams(scale, edgeFactor*n, 1000, seed))
	if err != nil {
		t.Fatal(err)
	}
	return n, stream.Inserts(edges)
}

// refSnapshot applies the stream to a single tracked store and
// publishes one snapshot — the single-shard reference.
func refSnapshot(n int, ups []edge.Update) *csr.Graph {
	mgr := snapmgr.New(2, dyngraph.NewTracked(dyngraph.NewHybrid(n, len(ups), 0, 1)))
	mgr.Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(2, ups) })
	mgr.Refresh(2)
	return mgr.Current()
}

// testFleet builds a fleet over the same stream and refreshes it.
func testFleet(n, shards int, ups []edge.Update) *Fleet {
	f := New(n, Config{Shards: shards, Workers: 2, ExpectedEdges: len(ups)})
	f.Ingest(2, ups)
	f.Refresh(2)
	return f
}

var shardCounts = []int{1, 2, 3, 4, 8}

func TestFleetIngestRouting(t *testing.T) {
	n, ups := testUpdates(t, 8, 8, 42)
	ref := refSnapshot(n, ups)
	for _, p := range shardCounts {
		f := testFleet(n, p, ups)
		if got := f.NumEdges(); got != ref.NumEdges() {
			t.Fatalf("shards=%d: NumEdges = %d, want %d", p, got, ref.NumEdges())
		}
		views := f.View(nil)
		var arcs int64
		for s, v := range views {
			arcs += v.NumEdges()
			// Every arc in shard s's snapshot must leave an owned vertex,
			// and its span must match the reference adjacency.
			for u := 0; u < n; u++ {
				d := v.Degree(uint32(u))
				if d == 0 {
					continue
				}
				if f.Owner(uint32(u)) != s {
					t.Fatalf("shards=%d: shard %d holds %d arcs of non-owned vertex %d", p, s, d, u)
				}
				if want := ref.Degree(uint32(u)); d != want {
					t.Fatalf("shards=%d: degree(%d) = %d, want %d", p, u, d, want)
				}
			}
		}
		if arcs != ref.NumEdges() {
			t.Fatalf("shards=%d: snapshot arc union = %d, want %d", p, arcs, ref.NumEdges())
		}
	}
}

func TestScatterGatherBFSEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   uint64
		mirror bool
	}{
		{"directed", 7, false},
		{"undirected", 11, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n, ups := testUpdates(t, 9, 8, tc.seed)
			if tc.mirror {
				ups = stream.Mirror(ups)
			}
			ref := refSnapshot(n, ups)
			var res traversal.Result
			sc := traversal.NewScratch()
			for _, p := range shardCounts {
				f := testFleet(n, p, ups)
				views := f.View(nil)
				ssc := NewScratch()
				for _, src := range []uint32{0, 1, uint32(n / 2), uint32(n - 1)} {
					traversal.Run(ref, []uint32{src}, traversal.Options{Workers: 2}, sc, &res)
					level, reached, levels := ssc.BFS(views, src)
					if reached != res.Reached || levels != res.Levels {
						t.Fatalf("shards=%d src=%d: (reached,levels) = (%d,%d), want (%d,%d)",
							p, src, reached, levels, res.Reached, res.Levels)
					}
					for v := 0; v < n; v++ {
						if level[v] != res.Level[v] {
							t.Fatalf("shards=%d src=%d: level[%d] = %d, want %d",
								p, src, v, level[v], res.Level[v])
						}
					}
				}
			}
		})
	}
}

func TestScatterGatherSSSPEquivalence(t *testing.T) {
	n, ups := testUpdates(t, 9, 8, 23)
	ref := refSnapshot(n, ups)
	refScratch := sssp.NewScratch()
	for _, p := range shardCounts {
		f := testFleet(n, p, ups)
		views := f.View(nil)
		ssc := NewScratch()
		// Heuristic delta (0), a tiny delta (exercises the overflow
		// ring), and a large one (single band per relaxation wave).
		for _, delta := range []int64{0, 3, 1 << 20} {
			for _, src := range []uint32{0, uint32(n / 3)} {
				want := sssp.Run(ref, src, sssp.Options{Workers: 2, Delta: delta, Scratch: refScratch})
				got := ssc.SSSP(views, src, sssp.LabelWeights, delta)
				for v := 0; v < n; v++ {
					if got[v] != want[v] {
						t.Fatalf("shards=%d delta=%d src=%d: dist[%d] = %d, want %d",
							p, delta, src, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestScatterGatherComponentsEquivalence(t *testing.T) {
	// Generate over the low half of the id space only: the high half
	// stays isolated, so the labeling must handle many singleton
	// components alongside the R-MAT giant component.
	scale := 9
	n := 2 << scale
	_, ups := testUpdates(t, scale, 8, 91)
	ref := refSnapshot(n, ups)
	want := cc.Components(2, ref)
	for _, p := range shardCounts {
		f := testFleet(n, p, ups)
		got := NewScratch().Components(f.View(nil))
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("shards=%d: comp[%d] = %d, want %d", p, v, got[v], want[v])
			}
		}
	}
}

func TestSTConnected(t *testing.T) {
	n := 16
	ups := stream.Inserts([]edge.Edge{
		{U: 0, V: 1, T: 1}, {U: 1, V: 2, T: 1}, {U: 2, V: 3, T: 1},
		{U: 5, V: 6, T: 1},
	})
	for _, p := range []int{1, 2, 4} {
		f := testFleet(n, p, ups)
		sc := NewScratch()
		views := f.View(nil)
		if hops, ok := sc.STConnected(views, 0, 3); !ok || hops != 3 {
			t.Fatalf("shards=%d: 0->3 = (%d,%v), want (3,true)", p, hops, ok)
		}
		if _, ok := sc.STConnected(views, 0, 6); ok {
			t.Fatalf("shards=%d: 0->6 reported connected", p)
		}
		if _, ok := sc.STConnected(views, 3, 0); ok {
			t.Fatalf("shards=%d: directed 3->0 reported connected", p)
		}
	}
}

// TestExecutorParity runs the fleet executor and the single-shard
// executor over the same graph and compares every reply field that
// does not depend on the engine (epochs differ by construction).
func TestExecutorParity(t *testing.T) {
	n, ups := testUpdates(t, 9, 8, 5)
	mgr := snapmgr.New(2, dyngraph.NewTracked(dyngraph.NewHybrid(n, len(ups), 0, 1)))
	single := qserve.New(mgr, qserve.Config{})
	single.Ingest(2, ups)
	mgr.Refresh(2)

	f := testFleet(n, 4, ups)
	ex := NewExecutor(f, qserve.Config{})

	sb, err1 := single.BFS(3)
	fb, err2 := ex.BFS(3)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if sb.Reached != fb.Reached || sb.Levels != fb.Levels {
		t.Fatalf("BFS reply mismatch: single %+v fleet %+v", sb, fb)
	}

	ss, err1 := single.SSSP(3, 0)
	fs, err2 := ex.SSSP(3, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ss.Reached != fs.Reached || ss.MaxDist != fs.MaxDist {
		t.Fatalf("SSSP reply mismatch: single %+v fleet %+v", ss, fs)
	}

	sco, err1 := single.Components()
	fco, err2 := ex.Components()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if sco.Components != fco.Components || sco.LargestSize != fco.LargestSize {
		t.Fatalf("components mismatch: single %+v fleet %+v", sco, fco)
	}

	sst, fst := single.Stats(), ex.Stats()
	if sst.Vertices != fst.Vertices || sst.Arcs != fst.Arcs || sst.MaxDegree != fst.MaxDegree {
		t.Fatalf("stats mismatch: single %+v fleet %+v", sst, fst)
	}

	if _, err := ex.BFS(uint32(n)); err != qserve.ErrBadVertex {
		t.Fatalf("out-of-range BFS err = %v, want ErrBadVertex", err)
	}
}

// TestShardHammer drives concurrent ingest, scatter-gather queries,
// and per-shard auto-refreshers at once — the race-detector stress for
// the gate-per-shard contract.
func TestShardHammer(t *testing.T) {
	n, ups := testUpdates(t, 9, 6, 77)
	seedEnd := len(ups) / 2
	// Trim so the streamed half splits into whole 256-update blocks:
	// the two ingesters then cover it exactly, no partial tail.
	ups = ups[:seedEnd+(len(ups)-seedEnd)/256*256]
	f := New(n, Config{Shards: 4, Workers: 2, ExpectedEdges: len(ups)})
	f.Ingest(2, ups[:seedEnd])
	f.Refresh(2)
	if !f.Start(snapmgr.Policy{MaxDirty: 64}) {
		t.Fatal("auto-refresh failed to start")
	}
	defer f.Stop()

	ex := NewExecutor(f, qserve.Config{MaxConcurrent: 4, MaxQueue: 64})
	var wg sync.WaitGroup
	// Two ingesters streaming the second half in small batches.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for lo := seedEnd + i*128; lo+128 <= len(ups); lo += 256 {
				f.Ingest(1, ups[lo:lo+128])
			}
		}(i)
	}
	// Three query workers hammering every query type.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				src := uint32((k*31 + i) % n)
				if _, err := ex.BFS(src); err != nil && err != qserve.ErrOverloaded {
					t.Error(err)
					return
				}
				if _, err := ex.SSSP(src, 0); err != nil && err != qserve.ErrOverloaded {
					t.Error(err)
					return
				}
				if _, err := ex.Connected(src, uint32((k+i)%n)); err != nil && err != qserve.ErrOverloaded {
					t.Error(err)
					return
				}
				if k%10 == 0 {
					if _, err := ex.Components(); err != nil && err != qserve.ErrOverloaded {
						t.Error(err)
						return
					}
					ex.Stats()
				}
			}
		}(i)
	}
	wg.Wait()

	// Quiesced: the live stores must have converged on the reference.
	ref := refSnapshot(n, ups)
	if got := f.NumEdges(); got != ref.NumEdges() {
		t.Fatalf("post-hammer NumEdges = %d, want %d", got, ref.NumEdges())
	}
}

// TestEpochMonotonePerShard asserts the per-shard epoch invariant the
// ROADMAP documents: each shard's epoch advances by exactly one per
// refresh, independently, and the fleet epoch is their sum.
func TestEpochMonotonePerShard(t *testing.T) {
	f := New(64, Config{Shards: 4, Workers: 1})
	base := make([]uint64, 4)
	for s := 0; s < 4; s++ {
		base[s] = f.Manager(s).Epoch()
	}
	// Refresh one shard directly: only its epoch moves.
	f.Manager(2).Refresh(1)
	for s := 0; s < 4; s++ {
		want := base[s]
		if s == 2 {
			want++
		}
		if got := f.Manager(s).Epoch(); got != want {
			t.Fatalf("shard %d epoch = %d, want %d", s, got, want)
		}
	}
	if got, want := f.Epoch(), base[0]+base[1]+base[2]+base[3]+1; got != want {
		t.Fatalf("fleet epoch = %d, want %d", got, want)
	}
	f.Refresh(2)
	if got, want := f.Epoch(), base[0]+base[1]+base[2]+base[3]+5; got != want {
		t.Fatalf("fleet epoch after full refresh = %d, want %d", got, want)
	}
}

// TestCachedExecutorParity runs the fleet executor with the result
// cache on: hits must answer bit-identically to the uncached executor
// over the same fleet, a full fleet refresh must retire the generation
// (elementwise per-shard view identity), and the hit path must not
// allocate.
func TestCachedExecutorParity(t *testing.T) {
	n, ups := testUpdates(t, 9, 8, 13)
	f := testFleet(n, 4, ups)
	plain := NewExecutor(f, qserve.Config{MaxConcurrent: 1})
	cached := NewExecutor(f, qserve.Config{MaxConcurrent: 1, CacheBytes: 32 << 20})

	check := func(src uint32) {
		t.Helper()
		wb, err1 := plain.BFS(src)
		var cb qserve.BFSReply
		var err2 error
		for i := 0; i < 2; i++ { // second round answers from the cache
			cb, err2 = cached.BFS(src)
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cb.Reached != wb.Reached || cb.Levels != wb.Levels {
			t.Fatalf("cached BFS(%d) = %+v, uncached %+v", src, cb, wb)
		}
		ws, err1 := plain.SSSP(src, 0)
		var cs qserve.SSSPReply
		for i := 0; i < 2; i++ {
			cs, err2 = cached.SSSP(src, 0)
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cs.Reached != ws.Reached || cs.MaxDist != ws.MaxDist {
			t.Fatalf("cached SSSP(%d) = %+v, uncached %+v", src, cs, ws)
		}
		wc, err1 := plain.Connected(src, (src+3)%uint32(n))
		var cn qserve.ConnReply
		for i := 0; i < 2; i++ {
			cn, err2 = cached.Connected(src, (src+3)%uint32(n))
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cn.Connected != wc.Connected || cn.Hops != wc.Hops {
			t.Fatalf("cached Connected(%d) = %+v, uncached %+v", src, cn, wc)
		}
	}
	check(3)
	check(101)
	ctr := cached.Cache().Counters()
	if ctr.Hits == 0 || ctr.Misses == 0 {
		t.Fatalf("cached executor saw no cache traffic: %+v", ctr)
	}
	gen := cached.Cache().Current()
	if gen == nil || gen.Len() == 0 {
		t.Fatal("no live generation after cached queries")
	}

	// Hit path allocates nothing — the scatter-gather pin set is pooled
	// and the cached value answers without touching the kernel arena.
	if a := testing.AllocsPerRun(30, func() {
		if _, err := cached.BFS(3); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Fatalf("sharded cache-hit BFS allocates %.1f objects/op, want 0", a)
	}

	// A fleet refresh swaps per-shard views: identity is elementwise, so
	// the generation retires and the same query recomputes — matching a
	// fresh uncached run on the new fleet state.
	f.Ingest(2, []edge.Update{
		{Edge: edge.Edge{U: 3, V: uint32(n - 1), T: 2000}, Op: edge.Insert},
		{Edge: edge.Edge{U: uint32(n - 1), V: 3, T: 2000}, Op: edge.Insert},
	})
	f.Refresh(2)
	misses := cached.Cache().Counters().Misses
	check(3)
	if cached.Cache().Current() == gen {
		t.Fatal("generation survived a fleet refresh")
	}
	if got := cached.Cache().Counters().Misses; got <= misses {
		t.Fatalf("post-refresh queries did not miss: %d then %d", misses, got)
	}
}
