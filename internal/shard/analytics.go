package shard

import (
	"math"
	"sync/atomic"

	"snapdyn/internal/cluster"
	"snapdyn/internal/csr"
	"snapdyn/internal/par"
	"snapdyn/internal/qcache"
	"snapdyn/internal/qserve"
)

// clusteringValue runs the pooled triangle count over the pinned view
// set. Ownership makes every vertex's full adjacency local to one
// shard, so the per-vertex triangle counts are exactly the
// single-snapshot kernel's; the aggregation visits vertices in
// original-id order (shard views are unpermuted, so identity order),
// which is the same summation order the single-shard engine uses —
// the float average is bit-identical across engines.
func (e *Executor) clusteringValue(views []*csr.Graph, keep bool) qcache.Value {
	s := e.kscratch()
	defer e.unscratch(s)
	if s.clus == nil {
		s.clus = cluster.NewScratch()
	}
	s.clus.ComputeViews(len(views), views)
	total, counted, avg := s.clus.Aggregate(identityID, views[0].N)
	val := qcache.Value{N1: total, N2: counted, F1: avg}
	if keep {
		val.Dist = append([]int64(nil), s.clus.Triangles()...)
	}
	return val
}

func identityID(u uint32) uint32 { return u }

// khopValue runs the depth-limited scatter-gather BFS.
func (e *Executor) khopValue(views []*csr.Graph, src uint32, k int32, keep bool) qcache.Value {
	s := e.kscratch()
	defer e.unscratch(s)
	reached := s.sc.KHop(views, src, k)
	val := qcache.Value{N1: int64(reached)}
	if keep {
		val.Levels = append([]int32(nil), s.sc.level...)
	}
	return val
}

// prFleetMaxIters hard-caps the power-iteration rounds, mirroring the
// single-shard solve's round cap.
const prFleetMaxIters = 1000

// pagerankValue solves PageRank over the pinned view set by sharded
// Jacobi power iteration: each round, every shard pushes its owned
// vertices' damped rank shares along their local arcs into the shared
// next iterate (CAS float adds — heads live on other shards), then the
// iterates swap and the round's max per-vertex delta decides
// convergence. Same fixed point as the single-shard push-residual
// solve — r = (1-d)·1 + d·AᵀD⁻¹r with dangling mass dropped — so the
// two engines agree to within a tolerance-proportional error (the
// documented PageRank exception to bit-identity; iteration counts are
// not comparable across engines either).
func (e *Executor) pagerankValue(views []*csr.Graph, tol float64, keep bool) qcache.Value {
	s := e.kscratch()
	defer e.unscratch(s)
	p := len(views)
	n := views[0].N
	if cap(s.prRank) < n {
		s.prRank = make([]float64, n)
		s.prNext = make([]uint64, n)
	}
	s.prRank = s.prRank[:n]
	s.prNext = s.prNext[:n]
	if len(s.prDelta) != p {
		s.prDelta = make([]float64, p)
	}
	rank, next, delta := s.prRank, s.prNext, s.prDelta
	const d = qserve.PageRankDamping
	teleport := 1 - d
	seed := math.Float64bits(teleport)
	par.ForBlock(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rank[i] = teleport
		}
	})
	iters := 0
	for iters < prFleetMaxIters {
		iters++
		par.ForBlock(p, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				next[i] = seed
			}
		})
		par.Workers(p, func(sh int) {
			g := views[sh]
			for u := sh; u < n; u += p {
				lo, hi := g.Offsets[u], g.Offsets[u+1]
				if lo == hi {
					continue
				}
				push := d * rank[u] / float64(hi-lo)
				for a := lo; a < hi; a++ {
					addFloatBits(&next[g.Adj[a]], push)
				}
			}
		})
		par.Workers(p, func(sh int) {
			lo, hi := sh*n/p, (sh+1)*n/p
			var dmax float64
			for i := lo; i < hi; i++ {
				nv := math.Float64frombits(next[i])
				if dd := math.Abs(nv - rank[i]); dd > dmax {
					dmax = dd
				}
				rank[i] = nv
			}
			delta[sh] = dmax
		})
		var dmax float64
		for _, v := range delta {
			if v > dmax {
				dmax = v
			}
		}
		if dmax < tol {
			break
		}
	}
	var maxRank, sum float64
	for i := 0; i < n; i++ {
		r := rank[i]
		sum += r
		if r > maxRank {
			maxRank = r
		}
	}
	val := qcache.Value{N1: int64(iters), F1: maxRank, F2: sum}
	if keep {
		val.Ranks = append([]float64(nil), rank...)
	}
	return val
}

// addFloatBits adds x to the float64 stored as bits at p (CAS loop) —
// the cross-shard accumulation primitive.
func addFloatBits(p *uint64, x float64) {
	for {
		old := atomic.LoadUint64(p)
		nf := math.Float64frombits(old) + x
		if atomic.CompareAndSwapUint64(p, old, math.Float64bits(nf)) {
			return
		}
	}
}
