package shard

import (
	"sync"
	"sync/atomic"

	"snapdyn/internal/edge"
	"snapdyn/internal/qserve"
)

// LiveFleet is the fleet's between-refresh connectivity index: one
// dynamic spanning forest per shard (qserve.Live), each fed the
// sub-batch its shard owns, joined at query time by a merged
// union-find over every forest's tree edges. The merge is rebuilt
// lazily and cached by the summed forest version, so a quiet fleet
// answers from one immutable flattened label array (two loads per
// query) and a churning fleet pays one O(n + tree edges) rebuild per
// applied batch, amortized over all queries between batches.
//
// Consistency matches the single-shard live index: an answer reflects
// every batch whose Ingest returned before the query started, and at
// quiesce it agrees exactly with the components of the fleet's next
// published snapshot set. While ingest is in flight the merged view
// may mix shard states from slightly different instants — exactly the
// cross-shard ordering looseness the fleet's epoch model already
// grants.
type LiveFleet struct {
	f     *Fleet
	parts []*qserve.Live

	// mu serializes merge rebuilds; merged holds the last built
	// snapshot for lock-free readers.
	mu     sync.Mutex
	merged atomic.Pointer[mergedConn]
}

// mergedConn is one immutable cross-shard connectivity snapshot: the
// fully flattened union-find labels (root[u] is u's component
// representative directly) and the summed forest version it was built
// at.
type mergedConn struct {
	version    uint64
	root       []uint32
	components int
}

// newLiveFleet builds the per-shard forests, each seeded from the
// matching pinned shard view (which holds exactly the arcs that shard
// owns — seeding all shards replays every stored arc once).
func newLiveFleet(f *Fleet) *LiveFleet {
	lf := &LiveFleet{f: f, parts: make([]*qserve.Live, f.Shards())}
	views := f.View(nil)
	for s := range lf.parts {
		l := qserve.NewLive(f.NumVertices())
		l.SeedCSR(views[s])
		lf.parts[s] = l
	}
	return lf
}

// Apply scatters one ingested batch by owning shard into the per-shard
// forests — the same routing rule the snapshot stores use, so forest
// and store stay update-for-update aligned. Safe for concurrent use.
func (lf *LiveFleet) Apply(batch []edge.Update) {
	subs := lf.f.Scatter(batch, nil)
	for s, sub := range subs {
		if len(sub) > 0 {
			lf.parts[s].Apply(sub)
		}
	}
}

// version sums the per-shard applied-batch counters — the change
// signal the merged snapshot is cached by.
func (lf *LiveFleet) version() uint64 {
	var v uint64
	for _, p := range lf.parts {
		v += p.Version()
	}
	return v
}

// Connected answers cross-shard st-connectivity from the merged
// forests.
func (lf *LiveFleet) Connected(u, v uint32) bool {
	m := lf.snapshot()
	return m.root[u] == m.root[v]
}

// Components counts the merged forests' components (isolated vertices
// included) — the oracle hook the consistency tests compare against
// the snapshot path.
func (lf *LiveFleet) Components() int { return lf.snapshot().components }

// snapshot returns a merged connectivity view no older than the forest
// versions at call time, rebuilding at most once per version change.
// The version is read before the forests are walked, so a batch
// landing mid-rebuild leaves the cached snapshot tagged stale and the
// next query rebuilds again — conservative, never sticky-stale.
func (lf *LiveFleet) snapshot() *mergedConn {
	ver := lf.version()
	if m := lf.merged.Load(); m != nil && m.version == ver {
		return m
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	ver = lf.version()
	if m := lf.merged.Load(); m != nil && m.version == ver {
		return m
	}
	m := lf.rebuild(ver)
	lf.merged.Store(m)
	return m
}

// rebuild unions every forest's tree edges into a fresh union-find and
// flattens it: O(n α) total, each per-shard walk under that forest's
// read lock.
func (lf *LiveFleet) rebuild(ver uint64) *mergedConn {
	n := lf.f.NumVertices()
	root := make([]uint32, n)
	for i := range root {
		root[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for root[x] != x {
			root[x] = root[root[x]] // path halving
			x = root[x]
		}
		return x
	}
	for _, p := range lf.parts {
		p.EachTreeEdge(func(u, v edge.ID) {
			ru, rv := find(u), find(v)
			if ru == rv {
				return
			}
			if ru < rv {
				root[rv] = ru
			} else {
				root[ru] = rv
			}
		})
	}
	components := 0
	for i := range root {
		if r := find(uint32(i)); r == uint32(i) {
			components++
		} else {
			root[i] = r
		}
	}
	return &mergedConn{version: ver, root: root, components: components}
}

// EnableLive builds the fleet's live connectivity index, seeded from
// the current per-shard snapshots, and starts feeding it from every
// subsequent Ingest. Call before serving (not synchronized with
// in-flight Ingest calls). Live queries fail with ErrUnsupported until
// this is called.
func (e *Executor) EnableLive() { e.live = newLiveFleet(e.fleet) }

// Live returns the fleet's live connectivity index, nil until
// EnableLive.
func (e *Executor) Live() *LiveFleet { return e.live }
