package shard

import (
	"reflect"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/frontier"
	"snapdyn/internal/par"
	"snapdyn/internal/sssp"
	"snapdyn/internal/wcsr"
)

// maxRing caps the cyclic bucket ring, as in the single-shard kernel.
const maxRing = 1 << 12

// ssspState is the sharded delta-stepping arena: per-shard weighted
// views (cached across runs over one pinned view set), the shared
// distance array, the coordinator-owned bucket ring, and the
// scatter/gather buffers for the per-band relaxation exchange.
type ssspState struct {
	dist []int64

	views   []wcsr.Graph
	viewFor []*csr.Graph
	viewWF  uintptr
	viewReq int64 // requested delta (cache key; <= 0 means heuristic)
	viewOK  bool

	sub [][]uint32 // relaxation batch scattered by owner
	out [][]uint32 // per-shard relaxation winners, gathered per phase

	ring      [][]uint32
	overflow  []uint32
	settled   []uint32
	batch     []uint32
	inBatch   *frontier.Bitmap
	inSettled *frontier.Bitmap
}

// SSSP runs sharded delta-stepping from src over the pinned views,
// returning the scratch-owned distance array (sssp.Inf marks
// unreachable vertices, exactly like the single-shard kernel — CAS
// relaxation makes distances exact, so the arrays are identical).
//
// The coordinator owns the bucket ring and runs the band loop; each
// relaxation phase scatters the band's batch by vertex owner, every
// shard relaxes its sub-batch's light (or heavy) arcs over its own
// weighted view with CAS on the shared distance array, and the
// winning improvements are gathered back into the ring at the phase
// barrier — the "tentative-distance relaxations exchanged per delta
// bucket" protocol. delta <= 0 derives one global delta from the
// per-shard weight distributions (edge-weighted mean), applied to
// every shard view with a binary-search Retarget so all shards agree
// on band boundaries.
func (sc *Scratch) SSSP(views []*csr.Graph, src uint32, wf wcsr.WeightFunc, delta int64) []int64 {
	p := len(views)
	n := views[0].N
	sp := &sc.sp
	sc.ensureViews(views, wf, delta)
	d := sp.views[0].Delta
	var maxW uint32
	for s := range sp.views {
		if sp.views[s].MaxW > maxW {
			maxW = sp.views[s].MaxW
		}
	}
	sp.ensureRun(p, n, maxW, d)

	dist := sp.dist
	par.ForBlock(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dist[i] = sssp.Inf
		}
	})
	dist[src] = 0

	mask := len(sp.ring) - 1
	sp.overflow = sp.overflow[:0]
	sp.ring[0] = append(sp.ring[0][:0], src)
	queued := 1

	for cur := int64(0); queued > 0 || len(sp.overflow) > 0; {
		if queued == 0 {
			cur, queued = sp.redistribute(cur, mask, d)
			continue
		}
		if len(sp.overflow) > 0 {
			queued += sp.sweepOverflow(cur, mask, d)
		}
		for len(sp.ring[int(cur)&mask]) == 0 {
			cur++
		}
		slot := &sp.ring[int(cur)&mask]

		// Light fixpoint: relax the band's light arcs until no vertex
		// re-enters it, exactly as in the single-shard kernel.
		settled := sp.settled[:0]
		for len(*slot) > 0 {
			raw := *slot
			batch := sp.batch[:0]
			for _, v := range raw {
				dv := dist[v]
				if dv == sssp.Inf || dv/d != cur {
					continue // stale: improved into another band
				}
				if sp.inBatch.Set(v) {
					batch = append(batch, v)
				}
			}
			queued -= len(raw)
			*slot = raw[:0]
			for _, v := range batch {
				sp.inBatch.Clear(v)
				if sp.inSettled.Set(v) {
					settled = append(settled, v)
				}
			}
			sp.batch = batch
			if len(batch) == 0 {
				continue
			}
			sp.relaxPhase(p, batch, true)
			queued += sp.drain(cur, mask, d)
		}

		// Heavy pass: once per vertex settled in this band. Heavy
		// targets land in strictly later bands; the fixpoint cannot
		// reopen.
		if len(settled) > 0 {
			sp.relaxPhase(p, settled, false)
			queued += sp.drain(cur, mask, d)
			for _, v := range settled {
				sp.inSettled.Clear(v)
			}
		}
		sp.settled = settled
		cur++
	}
	return dist
}

// ensureViews (re)builds the cached per-shard weighted views. A cache
// hit with a changed delta is a Retarget per shard — binary search
// over the weight-sorted spans — never a rebuild.
func (sc *Scratch) ensureViews(views []*csr.Graph, wf wcsr.WeightFunc, delta int64) {
	sp := &sc.sp
	p := len(views)
	wfp := reflect.ValueOf(wf).Pointer()
	same := sp.viewOK && sp.viewWF == wfp && len(sp.viewFor) == p
	if same {
		for s := range views {
			if sp.viewFor[s] != views[s] {
				same = false
				break
			}
		}
	}
	if same && sp.viewReq == delta {
		return
	}
	if !same {
		sp.viewOK = false
		if len(sp.views) != p {
			sp.views = make([]wcsr.Graph, p)
			sp.viewFor = make([]*csr.Graph, p)
		}
		// Materialize with a placeholder delta when the caller wants the
		// heuristic: the global value needs every shard's weights first.
		bdelta := delta
		if bdelta <= 0 {
			bdelta = 1
		}
		// wcsr.Rebuild reports bad weights by panicking on its caller's
		// goroutine — here a fleet worker, where an unhandled panic
		// would kill the process. Ferry it back to the coordinator.
		var pan atomic.Pointer[panicValue]
		par.Workers(p, func(s int) {
			defer func() {
				if r := recover(); r != nil {
					pan.CompareAndSwap(nil, &panicValue{r})
				}
			}()
			sp.views[s].Rebuild(1, views[s], wf, bdelta)
		})
		if pv := pan.Load(); pv != nil {
			panic(pv.v)
		}
		for s := range views {
			sp.viewFor[s] = views[s]
		}
		sp.viewWF = wfp
		sp.viewOK = true
	}
	sp.viewReq = delta
	if delta <= 0 {
		delta = globalDelta(sp.views)
	}
	if sp.views[0].Delta != delta {
		par.Workers(p, func(s int) { sp.views[s].Retarget(1, delta) })
	}
}

type panicValue struct{ v any }

// globalDelta combines the per-shard weight distributions into one
// delta: each shard's sampled mean weight, weighted by its arc count.
// Deterministic for a fixed shard count and view set.
func globalDelta(views []wcsr.Graph) int64 {
	var wsum, cnt int64
	for s := range views {
		m := views[s].NumEdges()
		if m > 0 {
			wsum += wcsr.HeuristicDelta(views[s].W) * m
			cnt += m
		}
	}
	if cnt == 0 {
		return 1
	}
	d := wsum / cnt
	if d < 1 {
		d = 1
	}
	return d
}

// ensureRun sizes the per-run buffers.
func (sp *ssspState) ensureRun(p, n int, maxW uint32, delta int64) {
	if cap(sp.dist) < n {
		sp.dist = make([]int64, n)
	} else {
		sp.dist = sp.dist[:n]
	}
	if sp.inBatch == nil {
		sp.inBatch = frontier.NewBitmap(n)
		sp.inSettled = frontier.NewBitmap(n)
	} else if sp.inBatch.Len() != n {
		sp.inBatch.Grow(n)
		sp.inSettled.Grow(n)
	}
	if len(sp.sub) != p {
		sp.sub = make([][]uint32, p)
		sp.out = make([][]uint32, p)
	}
	if s := ringSize(maxW, delta); len(sp.ring) < s {
		ring := make([][]uint32, s)
		copy(ring, sp.ring)
		sp.ring = ring
	}
}

// ringSize mirrors the single-shard kernel: a power-of-two window
// covering every band one relaxation can reach, capped at maxRing.
func ringSize(maxW uint32, delta int64) int {
	span := int64(maxW)/delta + 2
	s := 4
	for int64(s) < span && s < maxRing {
		s <<= 1
	}
	return s
}

// relaxPhase scatters the batch by owner and fans the relaxation out
// across shards: shard s relaxes the light (or heavy) arcs of its
// owned batch members over its own weighted view, CAS-minimizing into
// the shared distance array; winners land in the shard's output
// bucket for the coordinator to drain. Within a shard the loop is
// serial — parallelism is the shard fan-out.
func (sp *ssspState) relaxPhase(p int, batch []uint32, light bool) {
	for s := range sp.sub {
		sp.sub[s] = sp.sub[s][:0]
	}
	for _, u := range batch {
		sp.sub[int(u)%p] = append(sp.sub[int(u)%p], u)
	}
	par.Workers(p, func(s int) {
		wg := &sp.views[s]
		dist := sp.dist
		local := sp.out[s][:0]
		for _, u := range sp.sub[s] {
			du := atomic.LoadInt64(&dist[u])
			var lo, hi int64
			if light {
				lo, hi = wg.Offsets[u], wg.LightEnd[u]
			} else {
				lo, hi = wg.LightEnd[u], wg.Offsets[u+1]
			}
			for a := lo; a < hi; a++ {
				v := wg.Adj[a]
				nd := du + int64(wg.W[a])
				for {
					cur := atomic.LoadInt64(&dist[v])
					if nd >= cur {
						break
					}
					if atomic.CompareAndSwapInt64(&dist[v], cur, nd) {
						local = append(local, v)
						break
					}
				}
			}
		}
		sp.out[s] = local
	})
}

// drain moves the per-shard relaxation winners into the ring (or the
// overflow list for bands beyond the window), returning the number of
// ring entries added.
func (sp *ssspState) drain(cur int64, mask int, delta int64) int {
	dist := sp.dist
	span := int64(mask + 1)
	added := 0
	for s := range sp.out {
		for _, v := range sp.out[s] {
			b := dist[v] / delta
			if b-cur < span {
				sp.ring[int(b)&mask] = append(sp.ring[int(b)&mask], v)
				added++
			} else {
				sp.overflow = append(sp.overflow, v)
			}
		}
		sp.out[s] = sp.out[s][:0]
	}
	return added
}

// redistribute advances the window to the earliest live overflow band
// and re-rings every entry now inside it.
func (sp *ssspState) redistribute(cur int64, mask int, delta int64) (int64, int) {
	dist := sp.dist
	minBand, live := int64(-1), sp.overflow[:0]
	for _, v := range sp.overflow {
		b := dist[v] / delta
		if b < cur {
			continue
		}
		if minBand < 0 || b < minBand {
			minBand = b
		}
		live = append(live, v)
	}
	sp.overflow = live
	if minBand < 0 {
		return cur, 0
	}
	return minBand, sp.sweepOverflow(minBand, mask, delta)
}

// sweepOverflow rings every overflow entry whose band entered the
// window, drops stale duplicates, and returns the entries added.
func (sp *ssspState) sweepOverflow(cur int64, mask int, delta int64) int {
	dist := sp.dist
	span := int64(mask + 1)
	added, keep := 0, sp.overflow[:0]
	for _, v := range sp.overflow {
		b := dist[v] / delta
		if b < cur {
			continue
		}
		if b-cur < span {
			sp.ring[int(b)&mask] = append(sp.ring[int(b)&mask], v)
			added++
		} else {
			keep = append(keep, v)
		}
	}
	sp.overflow = keep
	return added
}
