package shard

import (
	"time"

	"snapdyn/internal/cc"
	"snapdyn/internal/cluster"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/qcache"
	"snapdyn/internal/qserve"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
)

// Executor serves the qserve.Engine query surface from a Fleet: the
// same admission policy (queue-or-shed) and pooled per-query scratch
// as the single-shard executor, with every query running the
// scatter-gather kernels over a pinned per-shard snapshot set. It
// plugs into qserve.NewServer unchanged — one HTTP surface, either
// engine.
//
// With Config.CacheBytes > 0 the executor carries the same
// snapshot-identity result cache as the single-shard engine. The cache
// identity is the whole pinned view set — one *csr.Graph per shard,
// compared elementwise — so a refresh on any one shard retires the
// generation, while no-op refreshes (csr.Refresh republishing the
// identical graph pointer shard-locally) keep it alive.
type Executor struct {
	fleet *Fleet
	cfg   qserve.Config
	adm   *qserve.Admission
	free  chan *scratchSet
	pins  chan *pinSet
	cache *qcache.Cache // nil when Config.CacheBytes <= 0

	// ingest, when set (SetIngest), replaces the direct scatter apply
	// with a durable commit path (DurableFleet.Ingest).
	ingest func(batch []edge.Update) (uint64, error)

	// live, when set (EnableLive), is the between-refresh connectivity
	// index: per-shard dynamic forests fed by Ingest, joined by a
	// merged union-find for cross-shard answers.
	live *LiveFleet
}

var _ qserve.Engine = (*Executor)(nil)

// scratchSet is one pooled unit of sharded kernel state: the
// scatter-gather arena, the component census buffer, the
// triangle-counting arena, and the power-iteration PageRank state.
// Only cache misses check one out; hits answer from the generation
// alone.
type scratchSet struct {
	sc    *Scratch
	sizes []int

	// clus is the triangle-counting arena, lazily built on the first
	// clustering query.
	clus *cluster.Scratch

	// PageRank power-iteration state (see analytics.go): the rank
	// vector, the next iterate as float bits for cross-shard CAS
	// accumulation, and the per-shard convergence-delta slots.
	prRank  []float64
	prNext  []uint64
	prDelta []float64
}

// pinSet is the per-query snapshot pin: one view per shard, plus the
// boxed identity buffer the cache generation is matched with. Pooled
// separately from the kernel scratch so the cache-hit path reuses a
// warm pin without touching the arena (and without allocating — both
// slices reach steady-state capacity after the first use).
type pinSet struct {
	views []*csr.Graph
	ids   []any
}

// NewExecutor returns a fleet executor. cfg.Workers is ignored: a
// scatter-gather query's parallelism is the shard fan-out.
func NewExecutor(f *Fleet, cfg qserve.Config) *Executor {
	cfg = cfg.WithDefaults()
	return &Executor{
		fleet: f,
		cfg:   cfg,
		adm:   qserve.NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		free:  make(chan *scratchSet, cfg.MaxConcurrent),
		pins:  make(chan *pinSet, cfg.MaxConcurrent),
		cache: qcache.New(cfg.CacheBytes),
	}
}

// Fleet returns the shard fleet the executor serves from.
func (e *Executor) Fleet() *Fleet { return e.fleet }

// Cache returns the executor's result cache (nil when disabled).
func (e *Executor) Cache() *qcache.Cache { return e.cache }

// NumVertices returns the fleet's fixed vertex-set size.
func (e *Executor) NumVertices() int { return e.fleet.NumVertices() }

// Ingest routes a batch through the fleet's per-shard gates (or the
// durable path when one is installed), returning the fleet sum-epoch
// ack.
func (e *Executor) Ingest(workers int, batch []edge.Update) (uint64, error) {
	if e.ingest != nil {
		epoch, err := e.ingest(batch)
		if err != nil {
			return epoch, err
		}
		if e.live != nil {
			e.live.Apply(batch)
		}
		return epoch, nil
	}
	epoch := e.fleet.IngestEpoch(workers, batch)
	if e.live != nil {
		e.live.Apply(batch)
	}
	return epoch, nil
}

// SetIngest installs a replacement ingest path (per-shard WAL group
// commit, DurableFleet). Call before serving; not synchronized with
// in-flight Ingest calls.
func (e *Executor) SetIngest(fn func(batch []edge.Update) (uint64, error)) { e.ingest = fn }

// WaitEpoch blocks until the fleet sum-epoch reaches min — the coarse
// fleet-level read-your-writes wait (see Fleet.WaitEpoch).
func (e *Executor) WaitEpoch(min uint64, timeout time.Duration) (uint64, error) {
	return e.fleet.WaitEpoch(min, timeout)
}

// Metrics returns the fleet-aggregated refresh metrics overlaid with
// the result-cache counters (zeros when caching is disabled).
func (e *Executor) Metrics() snapmgr.Metrics {
	m := e.fleet.Metrics()
	ctr := e.cache.Counters()
	m.CacheHits = ctr.Hits
	m.CacheMisses = ctr.Misses
	m.CacheCoalesced = ctr.Coalesced
	m.CacheEvictions = ctr.Evictions
	m.CacheBytes = ctr.Bytes
	return m
}

// Counters returns a point-in-time view of executor activity.
func (e *Executor) Counters() qserve.Counters { return e.adm.Counters() }

// checkout admits the query, pins one snapshot per shard, and — when
// caching is on — resolves the pinned set's cache generation. The
// fleet epoch is read before pinning so the reported epoch is a lower
// bound on the served snapshots' freshness. No kernel scratch is taken
// here: a cache hit answers from the generation without touching the
// arena pool.
func (e *Executor) checkout() (*pinSet, uint64, *qcache.Gen, error) {
	if err := e.adm.Acquire(); err != nil {
		return nil, 0, nil, err
	}
	var p *pinSet
	select {
	case p = <-e.pins:
	default:
		p = &pinSet{}
	}
	epoch := e.fleet.Epoch()
	p.views = e.fleet.View(p.views)
	var gen *qcache.Gen
	if e.cache != nil {
		p.ids = p.ids[:0]
		for _, g := range p.views {
			p.ids = append(p.ids, g)
		}
		gen = e.cache.ForViews(p.ids, epoch)
	}
	return p, epoch, gen, nil
}

// release returns the pin before freeing the slot.
func (e *Executor) release(p *pinSet) {
	e.pins <- p
	e.adm.Release()
}

// kscratch checks a kernel arena out of the pool; callers must hold an
// admission slot, so at most MaxConcurrent arenas exist.
func (e *Executor) kscratch() *scratchSet {
	select {
	case s := <-e.free:
		return s
	default:
		return &scratchSet{sc: NewScratch()}
	}
}

func (e *Executor) unscratch(s *scratchSet) { e.free <- s }

func (e *Executor) bfsValue(views []*csr.Graph, src uint32, keep bool) qcache.Value {
	s := e.kscratch()
	defer e.unscratch(s)
	level, reached, depth := s.sc.BFS(views, src)
	val := qcache.Value{N1: int64(reached), N2: int64(depth)}
	if keep {
		val.Levels = append([]int32(nil), level...)
	}
	return val
}

func (e *Executor) ssspValue(views []*csr.Graph, src uint32, delta int64, keep bool) qcache.Value {
	s := e.kscratch()
	defer e.unscratch(s)
	dist := s.sc.SSSP(views, src, sssp.LabelWeights, delta)
	var val qcache.Value
	for _, d := range dist {
		if d != sssp.Inf {
			val.N1++
			if d > val.N2 {
				val.N2 = d
			}
		}
	}
	if keep {
		val.Dist = append([]int64(nil), dist...)
	}
	return val
}

func (e *Executor) connValue(views []*csr.Graph, u, v uint32) qcache.Value {
	s := e.kscratch()
	defer e.unscratch(s)
	if hops, ok := s.sc.STConnected(views, u, v); ok {
		return qcache.Value{Flag: true, N1: int64(hops)}
	}
	return qcache.Value{N1: -1}
}

func (e *Executor) componentsValue(views []*csr.Graph, keep bool) qcache.Value {
	s := e.kscratch()
	defer e.unscratch(s)
	comp := s.sc.Components(views)
	s.sizes = cc.CensusInto(1, comp, s.sizes)
	_, size := cc.LargestOf(1, s.sizes)
	val := qcache.Value{N1: int64(cc.Count(comp)), N2: int64(size)}
	if keep {
		val.Labels = append([]uint32(nil), comp...)
	}
	return val
}

// Stats fans out over the shards, bypassing admission like the
// single-shard engine so the service stays observable under overload.
func (e *Executor) Stats() qserve.StatsReply {
	epoch := e.fleet.Epoch()
	views := e.fleet.View(nil)
	var sc Scratch
	st := sc.Stats(views)
	// Shards publish plain CSR snapshots; the fleet footprint is their sum.
	var bytes int64
	for _, g := range views {
		bytes += g.SizeBytes()
	}
	ctr := e.cache.Counters()
	return qserve.StatsReply{
		Vertices:       st.Vertices,
		Arcs:           st.Arcs,
		MaxDegree:      st.MaxDegree,
		Epoch:          epoch,
		Staleness:      e.fleet.Staleness(),
		SizeBytes:      bytes,
		Format:         "plain",
		CacheHits:      ctr.Hits,
		CacheMisses:    ctr.Misses,
		Coalesced:      ctr.Coalesced,
		CacheBytes:     ctr.Bytes,
		CacheEvictions: ctr.Evictions,
	}
}
