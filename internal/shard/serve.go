package shard

import (
	"time"

	"snapdyn/internal/cc"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/qserve"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
)

// Executor serves the qserve.Engine query surface from a Fleet: the
// same admission policy (queue-or-shed) and pooled per-query scratch
// as the single-shard executor, with every query running the
// scatter-gather kernels over a pinned per-shard snapshot set. It
// plugs into qserve.NewServer unchanged — one HTTP surface, either
// engine.
type Executor struct {
	fleet *Fleet
	cfg   qserve.Config
	adm   *qserve.Admission
	free  chan *scratchSet

	// ingest, when set (SetIngest), replaces the direct scatter apply
	// with a durable commit path (DurableFleet.Ingest).
	ingest func(batch []edge.Update) (uint64, error)
}

var _ qserve.Engine = (*Executor)(nil)

// scratchSet is one pooled unit of sharded query state: the
// scatter-gather arena plus the pinned view set and the component
// census buffer.
type scratchSet struct {
	sc    *Scratch
	views []*csr.Graph
	sizes []int
}

// NewExecutor returns a fleet executor. cfg.Workers is ignored: a
// scatter-gather query's parallelism is the shard fan-out.
func NewExecutor(f *Fleet, cfg qserve.Config) *Executor {
	cfg = cfg.WithDefaults()
	return &Executor{
		fleet: f,
		cfg:   cfg,
		adm:   qserve.NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		free:  make(chan *scratchSet, cfg.MaxConcurrent),
	}
}

// Fleet returns the shard fleet the executor serves from.
func (e *Executor) Fleet() *Fleet { return e.fleet }

// NumVertices returns the fleet's fixed vertex-set size.
func (e *Executor) NumVertices() int { return e.fleet.NumVertices() }

// Ingest routes a batch through the fleet's per-shard gates (or the
// durable path when one is installed), returning the fleet sum-epoch
// ack.
func (e *Executor) Ingest(workers int, batch []edge.Update) (uint64, error) {
	if e.ingest != nil {
		return e.ingest(batch)
	}
	return e.fleet.IngestEpoch(workers, batch), nil
}

// SetIngest installs a replacement ingest path (per-shard WAL group
// commit, DurableFleet). Call before serving; not synchronized with
// in-flight Ingest calls.
func (e *Executor) SetIngest(fn func(batch []edge.Update) (uint64, error)) { e.ingest = fn }

// WaitEpoch blocks until the fleet sum-epoch reaches min — the coarse
// fleet-level read-your-writes wait (see Fleet.WaitEpoch).
func (e *Executor) WaitEpoch(min uint64, timeout time.Duration) (uint64, error) {
	return e.fleet.WaitEpoch(min, timeout)
}

// Metrics returns the fleet-aggregated refresh metrics.
func (e *Executor) Metrics() snapmgr.Metrics { return e.fleet.Metrics() }

// Counters returns a point-in-time view of executor activity.
func (e *Executor) Counters() qserve.Counters { return e.adm.Counters() }

// checkout admits the query, then pins one snapshot per shard and
// hands out a scratch set. Like the single-shard pool, scratch sets
// are only created while holding a slot, so at most MaxConcurrent
// exist.
func (e *Executor) checkout() (*scratchSet, error) {
	if err := e.adm.Acquire(); err != nil {
		return nil, err
	}
	var s *scratchSet
	select {
	case s = <-e.free:
	default:
		s = &scratchSet{sc: NewScratch()}
	}
	s.views = e.fleet.View(s.views)
	return s, nil
}

func (e *Executor) release(s *scratchSet) {
	e.free <- s
	e.adm.Release()
}

// BFS runs a scatter-gather breadth-first search from src.
func (e *Executor) BFS(src uint32) (qserve.BFSReply, error) {
	s, err := e.checkout()
	if err != nil {
		return qserve.BFSReply{}, err
	}
	defer e.release(s)
	if int(src) >= e.fleet.NumVertices() {
		return qserve.BFSReply{}, qserve.ErrBadVertex
	}
	_, reached, levels := s.sc.BFS(s.views, src)
	return qserve.BFSReply{Src: src, Reached: reached, Levels: levels, Epoch: e.fleet.Epoch()}, nil
}

// SSSP runs sharded delta-stepping from src with arc time labels as
// weights, like the single-shard engine (delta <= 0 derives the
// global heuristic width).
func (e *Executor) SSSP(src uint32, delta int64) (qserve.SSSPReply, error) {
	s, err := e.checkout()
	if err != nil {
		return qserve.SSSPReply{}, err
	}
	defer e.release(s)
	if int(src) >= e.fleet.NumVertices() {
		return qserve.SSSPReply{}, qserve.ErrBadVertex
	}
	dist := s.sc.SSSP(s.views, src, sssp.LabelWeights, delta)
	reply := qserve.SSSPReply{Src: src, Epoch: e.fleet.Epoch()}
	for _, d := range dist {
		if d != sssp.Inf {
			reply.Reached++
			if d > reply.MaxDist {
				reply.MaxDist = d
			}
		}
	}
	return reply, nil
}

// Connected answers st-connectivity with an early-exiting
// scatter-gather traversal from u.
func (e *Executor) Connected(u, v uint32) (qserve.ConnReply, error) {
	s, err := e.checkout()
	if err != nil {
		return qserve.ConnReply{}, err
	}
	defer e.release(s)
	if int(u) >= e.fleet.NumVertices() || int(v) >= e.fleet.NumVertices() {
		return qserve.ConnReply{}, qserve.ErrBadVertex
	}
	reply := qserve.ConnReply{U: u, V: v, Epoch: e.fleet.Epoch()}
	if u == v {
		reply.Connected, reply.Hops = true, 0
		return reply, nil
	}
	hops, ok := s.sc.STConnected(s.views, u, v)
	if ok {
		reply.Connected, reply.Hops = true, hops
	} else {
		reply.Hops = -1
	}
	return reply, nil
}

// Components labels weakly-connected components by cross-shard label
// merge; the label array and census are pool-owned.
func (e *Executor) Components() (qserve.ComponentsReply, error) {
	s, err := e.checkout()
	if err != nil {
		return qserve.ComponentsReply{}, err
	}
	defer e.release(s)
	comp := s.sc.Components(s.views)
	s.sizes = cc.CensusInto(1, comp, s.sizes)
	_, size := cc.LargestOf(1, s.sizes)
	return qserve.ComponentsReply{
		Components:  cc.Count(comp),
		LargestSize: size,
		Epoch:       e.fleet.Epoch(),
	}, nil
}

// Stats fans out over the shards, bypassing admission like the
// single-shard engine so the service stays observable under overload.
func (e *Executor) Stats() qserve.StatsReply {
	epoch := e.fleet.Epoch()
	views := e.fleet.View(nil)
	var sc Scratch
	st := sc.Stats(views)
	// Shards publish plain CSR snapshots; the fleet footprint is their sum.
	var bytes int64
	for _, g := range views {
		bytes += g.SizeBytes()
	}
	return qserve.StatsReply{
		Vertices:  st.Vertices,
		Arcs:      st.Arcs,
		MaxDegree: st.MaxDegree,
		Epoch:     epoch,
		Staleness: e.fleet.Staleness(),
		SizeBytes: bytes,
		Format:    "plain",
	}
}
