// Package shard is the in-process vertex-partitioned sharding layer: a
// Fleet of shard workers, each owning its own dirty-tracked store and
// epoch-versioned snapshot manager, fronted by a router that assigns
// every vertex to exactly one shard (the paper's Vpart rule, u mod P,
// promoted from a batch-application trick to the serving architecture).
//
// Ownership is by arc source: shard Owner(u) holds all arcs out of u,
// so a vertex's entire adjacency lives in one shard and every update
// (u, v) routes to exactly one shard's gate. Ingest batches are
// scattered by owner and applied concurrently — P shard gates instead
// of one global RWMutex — and each shard refreshes its own snapshot
// independently, so refresh cost and gate stalls scale with the shard,
// not the whole graph.
//
// Contracts (relied on by the scatter-gather kernels in query.go):
//
//   - Per-shard epochs are independently monotone. There is no global
//     epoch; cross-shard ordering of two updates routed to different
//     shards is undefined, exactly like two updates racing one gate.
//   - A scatter-gather query pins one snapshot per shard (View) for its
//     whole run. Mid-query refreshes publish new snapshots without
//     affecting the pinned set — RCU per shard, as before.
//   - While auto-refreshers run, every mutation must go through the
//     fleet's Ingest (or a shard manager's own Ingest): the per-shard
//     gate contract is the single-manager gate contract, per shard.
package shard

import (
	"time"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/snapmgr"
)

// Config sizes a Fleet.
type Config struct {
	// Shards is the number of shard workers; <= 0 means 1.
	Shards int
	// Workers is the parallelism used for the initial materialization
	// of each shard's snapshot; <= 0 means GOMAXPROCS.
	Workers int
	// ExpectedEdges sizes each shard's store to ExpectedEdges/Shards
	// (plus slack); <= 0 derives 8 arcs per vertex.
	ExpectedEdges int
	// NewStore, when non-nil, builds each shard's backing store over n
	// vertices (every store spans the full vertex set; only owned
	// vertices ever receive arcs). Nil builds the hybrid default.
	NewStore func(shard, n, expectedEdges int) dyngraph.Store
}

// Fleet is a set of shard workers behind one vertex router. All methods
// are safe for concurrent use; the gate discipline within each shard is
// exactly snapmgr's.
type Fleet struct {
	n    int
	p    int
	mgrs []*snapmgr.Manager
}

// New builds a fleet of cfg.Shards shard workers over n vertices, each
// at epoch 1 with an empty snapshot.
func New(n int, cfg Config) *Fleet {
	p := cfg.Shards
	if p <= 0 {
		p = 1
	}
	expected := cfg.ExpectedEdges
	if expected <= 0 {
		expected = 8 * n
	}
	perShard := expected/p + 1
	f := &Fleet{n: n, p: p, mgrs: make([]*snapmgr.Manager, p)}
	par.Workers(min(p, par.MaxWorkers()), func(id int) {
		for s := id; s < p; s += min(p, par.MaxWorkers()) {
			var store dyngraph.Store
			if cfg.NewStore != nil {
				store = cfg.NewStore(s, n, perShard)
			} else {
				store = dyngraph.NewHybrid(n, perShard, 0, uint64(s)+1)
			}
			f.mgrs[s] = snapmgr.New(cfg.Workers, dyngraph.NewTracked(store))
		}
	})
	return f
}

// NumVertices returns the global vertex-set size.
func (f *Fleet) NumVertices() int { return f.n }

// Shards returns the shard count.
func (f *Fleet) Shards() int { return f.p }

// Owner returns the shard owning vertex u — the router. Every arc out
// of u, and every update with source u, belongs to this shard.
func (f *Fleet) Owner(u uint32) int { return int(u % uint32(f.p)) }

// Manager returns shard s's snapshot manager, for per-shard policy and
// metrics access.
func (f *Fleet) Manager(s int) *snapmgr.Manager { return f.mgrs[s] }

// NumEdges returns the number of live arcs across all shards (reading
// each shard's live store; for snapshot-consistent counts sum over a
// pinned View instead).
func (f *Fleet) NumEdges() int64 {
	var m int64
	for _, mgr := range f.mgrs {
		m += mgr.Store().NumEdges()
	}
	return m
}

// Ingest scatters the batch by owning shard and applies the sub-batches
// concurrently, each through its shard's ingest/refresh gate. workers
// is the total parallelism budget: each shard's sub-batch is applied
// with max(1, workers/Shards) workers. Safe to call concurrently with
// other Ingest calls, with queries, and with running auto-refreshers.
func (f *Fleet) Ingest(workers int, batch []edge.Update) {
	if len(batch) == 0 {
		return
	}
	if f.p == 1 {
		f.mgrs[0].Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(workers, batch) })
		return
	}
	subs := f.Scatter(batch, nil)
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	perShard := max(1, workers/f.p)
	par.Workers(f.p, func(s int) {
		if len(subs[s]) == 0 {
			return
		}
		f.mgrs[s].Ingest(func(t *dyngraph.Tracked) { t.ApplyBatch(perShard, subs[s]) })
	})
}

// IngestEpoch is Ingest returning the fleet ack epoch: the sum-epoch
// value at which every sub-batch is guaranteed visible. Each touched
// shard contributes its own ack epoch (snapmgr.IngestEpoch), untouched
// shards their current epoch; because per-shard epochs are monotone the
// sum reaching the returned value implies... only that total progress
// happened — the sum-epoch wait (WaitEpoch) is deliberately coarse.
// Precise per-shard read-your-writes needs the per-shard ack epochs,
// which single-vertex queries get for free (one owner per vertex).
func (f *Fleet) IngestEpoch(workers int, batch []edge.Update) uint64 {
	if f.p == 1 {
		return f.mgrs[0].IngestEpoch(func(s *dyngraph.Tracked) { s.ApplyBatch(workers, batch) })
	}
	subs := f.Scatter(batch, nil)
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	perShard := max(1, workers/f.p)
	epochs := make([]uint64, f.p)
	par.Workers(f.p, func(s int) {
		if len(subs[s]) == 0 {
			epochs[s] = f.mgrs[s].Epoch()
			return
		}
		epochs[s] = f.mgrs[s].IngestEpoch(func(t *dyngraph.Tracked) { t.ApplyBatch(perShard, subs[s]) })
	})
	var sum uint64
	for _, e := range epochs {
		sum += e
	}
	return sum
}

// WaitEpoch blocks until the fleet sum-epoch reaches min, polling the
// shards with a short backoff (the per-shard publication channels can't
// be multiplexed without a global epoch, which the design deliberately
// avoids). timeout <= 0 waits forever. Returns the sum observed and
// snapmgr.ErrEpochWaitTimeout on expiry.
func (f *Fleet) WaitEpoch(min uint64, timeout time.Duration) (uint64, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	sleep := 100 * time.Microsecond
	for {
		e := f.Epoch()
		if e >= min {
			return e, nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return e, snapmgr.ErrEpochWaitTimeout
		}
		time.Sleep(sleep)
		if sleep < 5*time.Millisecond {
			sleep *= 2
		}
	}
}

// Scatter partitions a batch by owning shard into dst (reused when its
// shape fits, so steady-state ingest loops can avoid the per-call
// slices). The sub-batches are newly ordered but order within a shard
// preserves batch order.
func (f *Fleet) Scatter(batch []edge.Update, dst [][]edge.Update) [][]edge.Update {
	if len(dst) != f.p {
		dst = make([][]edge.Update, f.p)
	}
	for s := range dst {
		dst[s] = dst[s][:0]
	}
	for i := range batch {
		s := f.Owner(batch[i].U)
		dst[s] = append(dst[s], batch[i])
	}
	return dst
}

// Refresh materializes and publishes a fresh snapshot on every shard,
// in parallel across shards. Each shard's epoch advances by exactly
// one, independently.
func (f *Fleet) Refresh(workers int) {
	perShard := max(1, workers/f.p)
	par.Workers(f.p, func(s int) { f.mgrs[s].Refresh(perShard) })
}

// Start launches every shard's background auto-refresher under p,
// reporting false if any shard already had one running (shards that did
// start stay started).
func (f *Fleet) Start(p snapmgr.Policy) bool {
	ok := true
	for _, mgr := range f.mgrs {
		ok = mgr.Start(p) && ok
	}
	return ok
}

// Stop halts every shard's auto-refresher, waiting for in-flight
// refreshes to publish.
func (f *Fleet) Stop() {
	for _, mgr := range f.mgrs {
		mgr.Stop()
	}
}

// View pins the current snapshot of every shard into dst (reused when
// it has the right length): the per-query snapshot set the contract
// requires. The pinned snapshots stay valid for as long as the caller
// holds them, regardless of concurrent refreshes.
func (f *Fleet) View(dst []*csr.Graph) []*csr.Graph {
	if len(dst) != f.p {
		dst = make([]*csr.Graph, f.p)
	}
	for s, mgr := range f.mgrs {
		dst[s] = mgr.Current()
	}
	return dst
}

// Epoch returns the sum of the per-shard epochs: a monotone global
// progress counter (each shard's epoch is independently monotone, so
// the sum is too). There is no cross-shard snapshot ordering beyond
// monotonicity.
func (f *Fleet) Epoch() uint64 {
	var e uint64
	for _, mgr := range f.mgrs {
		e += mgr.Epoch()
	}
	return e
}

// Staleness returns the total dirty-vertex count across shards — the
// work the next fleet-wide refresh round will do.
func (f *Fleet) Staleness() int {
	d := 0
	for _, mgr := range f.mgrs {
		d += mgr.Staleness()
	}
	return d
}

// Metrics aggregates the per-shard refresh metrics into one view:
// counts and total latency sum across shards, Last*/Max latencies take
// the per-shard maximum, Epoch is the epoch sum, Staleness the total
// dirty count, and Age the oldest shard snapshot's age.
func (f *Fleet) Metrics() snapmgr.Metrics {
	var out snapmgr.Metrics
	for _, mgr := range f.mgrs {
		m := mgr.Metrics()
		out.Refreshes += m.Refreshes
		out.AutoRefreshes += m.AutoRefreshes
		out.DirtyTriggered += m.DirtyTriggered
		out.AgeTriggered += m.AgeTriggered
		out.LastDirty += m.LastDirty
		out.TotalLatency += m.TotalLatency
		out.Epoch += m.Epoch
		out.Staleness += m.Staleness
		if m.LastLatency > out.LastLatency {
			out.LastLatency = m.LastLatency
		}
		if m.MaxLatency > out.MaxLatency {
			out.MaxLatency = m.MaxLatency
		}
		if m.Age > out.Age {
			out.Age = m.Age
		}
	}
	return out
}
