package wal

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snapdyn/internal/edge"
)

// mkBatch builds a deterministic batch of n updates whose payload
// encodes its position in the stream, so replay order mistakes show up
// as value mismatches, not just count mismatches.
func mkBatch(base uint64, n int) []edge.Update {
	out := make([]edge.Update, n)
	for i := range out {
		k := base + uint64(i)
		op := edge.Insert
		if k%7 == 3 {
			op = edge.Delete
		}
		out[i] = edge.Update{
			Op:   op,
			Edge: edge.Edge{U: uint32(k % 997), V: uint32(k % 1009), T: uint32(k)},
		}
	}
	return out
}

// flatten concatenates recovered batches for prefix comparison.
func flatten(batches [][]edge.Update) []edge.Update {
	var out []edge.Update
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Create(dir, Options{SegmentBytes: 256}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 0 || rec.Checkpoint != nil || len(rec.Batches) != 0 {
		t.Fatalf("fresh dir recovery not empty: %+v", rec)
	}

	var all []edge.Update
	var lsn uint64
	for i := 0; i < 20; i++ {
		b := mkBatch(lsn, 1+i%5)
		base, err := l.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if base != lsn {
			t.Fatalf("append %d: base %d, want %d", i, base, lsn)
		}
		all = append(all, b...)
		lsn += uint64(len(b))
	}
	if got := l.LSN(); got != lsn {
		t.Fatalf("LSN %d, want %d", got, lsn)
	}
	m := l.Metrics()
	if m.Appends != 20 || m.AppendedUpdates != lsn {
		t.Fatalf("metrics %+v", m)
	}
	if m.Rotations == 0 {
		t.Fatal("expected at least one rotation with 256-byte segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.LSN != lsn || rec2.Torn {
		t.Fatalf("recovered LSN %d torn=%v, want %d torn=false", rec2.LSN, rec2.Torn, lsn)
	}
	if got := flatten(rec2.Batches); !reflect.DeepEqual(got, all) {
		t.Fatalf("recovered %d updates != appended %d", len(got), len(all))
	}
	// Base LSNs must be contiguous.
	var at uint64
	for i, b := range rec2.Batches {
		if rec2.BaseLSNs[i] != at {
			t.Fatalf("batch %d base %d, want %d", i, rec2.BaseLSNs[i], at)
		}
		at += uint64(len(b))
	}
	// The reopened log must keep appending at the recovered LSN.
	if base, err := l2.Append(mkBatch(lsn, 3)); err != nil || base != lsn {
		t.Fatalf("append after recovery: base %d err %v, want %d", base, err, lsn)
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if base, err := l.Append(nil); err != nil || base != 0 {
		t.Fatalf("empty append: base %d err %v", base, err)
	}
	if m := l.Metrics(); m.Appends != 0 {
		t.Fatalf("empty append counted: %+v", m)
	}
}

// TestTornTailSweep truncates the final segment at every byte offset
// within (and beyond) the last record and asserts recovery returns
// exactly the preceding records — the acked prefix — flagging Torn
// whenever bytes were dropped.
func TestTornTailSweep(t *testing.T) {
	build := func(dir string) (segSize int64, lastFrame int64, prefix []edge.Update, tail []edge.Update) {
		l, _, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var lsn uint64
		for i := 0; i < 3; i++ {
			b := mkBatch(lsn, 4)
			if _, err := l.Append(b); err != nil {
				t.Fatal(err)
			}
			prefix = append(prefix, b...)
			lsn += uint64(len(b))
		}
		tail = mkBatch(lsn, 5)
		if _, err := l.Append(tail); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(segPath(dir, 0))
		if err != nil {
			t.Fatal(err)
		}
		return st.Size(), int64(frameHdr + recHdrSize + updSize*len(tail)), prefix, tail
	}

	probe := t.TempDir()
	segSize, lastFrame, _, _ := build(probe)
	lastStart := segSize - lastFrame

	for cut := lastStart; cut <= segSize; cut++ {
		dir := t.TempDir()
		_, _, prefix, tail := build(dir)
		if err := os.Truncate(segPath(dir, 0), cut); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Create(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		l.Close()
		want := prefix
		// A cut exactly at the previous record's boundary looks like a
		// clean close — recovery cannot (and need not) flag it.
		wantTorn := cut > lastStart && cut < segSize
		if cut == segSize {
			want = append(append([]edge.Update(nil), prefix...), tail...)
		}
		if got := flatten(rec.Batches); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: recovered %d updates, want %d", cut, len(got), len(want))
		}
		if rec.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, rec.Torn, wantTorn)
		}
		if rec.LSN != uint64(len(want)) {
			t.Fatalf("cut %d: LSN %d, want %d", cut, rec.LSN, len(want))
		}
	}
}

// TestTornSegmentHeader truncates a crashed final segment inside its
// header: recovery must treat it as empty and remove it.
func TestTornSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 64}) // tiny: every append rotates
	if err != nil {
		t.Fatal(err)
	}
	b0 := mkBatch(0, 2)
	if _, err := l.Append(b0); err != nil {
		t.Fatal(err)
	}
	b1 := mkBatch(2, 2)
	if _, err := l.Append(b1); err != nil { // rotated into wal-...2.seg
		t.Fatal(err)
	}
	l.Close()
	for cut := int64(0); cut < segHdrSize; cut++ {
		if err := os.Truncate(segPath(dir, 2), cut); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Create(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		l2.Close()
		if !rec.Torn || rec.LSN != 2 || !reflect.DeepEqual(flatten(rec.Batches), b0) {
			t.Fatalf("cut %d: LSN %d torn=%v batches %d", cut, rec.LSN, rec.Torn, len(rec.Batches))
		}
		// Create rotated a fresh segment at LSN 2; re-truncate it for
		// the next iteration (it only holds the header).
	}
}

// TestCorruptMiddleRecordRefused flips a byte in a non-final record:
// that cannot be a torn tail, so recovery must refuse the log instead
// of silently dropping acknowledged updates.
func TestCorruptMiddleRecordRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if _, err := l.Append(mkBatch(i*4, 4)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := segPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHdrSize+frameHdr+3] ^= 0xff // payload of record 0
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Create(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err %v, want ErrCorrupt", err)
	}
}

func TestCheckpointRecoverPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var lsn uint64
	for i := 0; i < 10; i++ {
		b := mkBatch(lsn, 4)
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		lsn += uint64(len(b))
	}
	dump := []edge.Edge{{U: 1, V: 2, T: 3}, {U: 4, V: 5, T: 6}}
	if err := l.Checkpoint(dump, 17, 1024); err != nil {
		t.Fatal(err)
	}
	if got := l.LastCheckpointLSN(); got != lsn {
		t.Fatalf("LastCheckpointLSN %d, want %d", got, lsn)
	}
	ckLSN := lsn
	var tail []edge.Update
	for i := 0; i < 4; i++ {
		b := mkBatch(lsn, 3)
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, b...)
		lsn += uint64(len(b))
	}
	if m := l.Metrics(); m.Checkpoints != 1 || m.CheckpointErrs != 0 {
		t.Fatalf("metrics %+v", m)
	}
	l.Close()

	// Pruning must have removed all segments fully covered by the
	// checkpoint: every surviving segment's successor must be > ckLSN.
	segs, ckpts, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0] != ckLSN {
		t.Fatalf("checkpoints on disk: %v", ckpts)
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= ckLSN {
			t.Fatalf("segment %d still on disk but covered by checkpoint %d", segs[i], ckLSN)
		}
	}

	l2, rec, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Checkpoint == nil {
		t.Fatal("no checkpoint recovered")
	}
	if rec.Checkpoint.LSN != ckLSN || rec.Checkpoint.Epoch != 17 || rec.Checkpoint.N != 1024 {
		t.Fatalf("checkpoint meta %+v", rec.Checkpoint)
	}
	if !reflect.DeepEqual(rec.Checkpoint.Edges, dump) {
		t.Fatalf("checkpoint edges %v", rec.Checkpoint.Edges)
	}
	if got := flatten(rec.Batches); !reflect.DeepEqual(got, tail) {
		t.Fatalf("recovered tail %d updates, want %d", len(got), len(tail))
	}
	if rec.LSN != lsn {
		t.Fatalf("LSN %d, want %d", rec.LSN, lsn)
	}
}

// TestCheckpointCorruptFallsBack corrupts the newest checkpoint;
// recovery must fall back to replaying from the older one as long as
// segments still cover the gap.
func TestCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := mkBatch(0, 6)
	if _, err := l.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]edge.Edge{{U: 9, V: 9, T: 9}}, 1, 16); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload byte in the checkpoint.
	path := ckptPath(dir, 6)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[ckptHdrSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The pre-checkpoint segment was NOT pruned here only if rotation
	// kept it; checkpoint pruning spares the current segment, which
	// holds everything, so recovery can still replay from LSN 0.
	l2, rec, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if rec.Checkpoint != nil {
		t.Fatal("corrupt checkpoint was accepted")
	}
	if got := flatten(rec.Batches); !reflect.DeepEqual(got, b) {
		t.Fatalf("recovered %d updates, want %d", len(got), len(b))
	}
}

// TestCheckpointGapRefused removes the segments bridging checkpoint
// and tail: recovery must refuse rather than resurrect a stale state.
func TestCheckpointGapRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(2, 2)); err != nil { // rotates to seg @2
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(4, 2)); err != nil { // rotates to seg @4
		t.Fatal(err)
	}
	l.Close()
	if err := os.Remove(segPath(dir, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Create(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err %v, want ErrCorrupt", err)
	}
}

func TestDiskFullPropagatesAndPoisons(t *testing.T) {
	dir := t.TempDir()
	fd := NewFaultDir(1)
	l, _, err := Create(dir, Options{OpenFile: fd.OpenFile, Rename: fd.Rename})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	// Allow a few more bytes, then the disk is full.
	fd.mu.Lock()
	fd.WriteBudget = fd.written + 10
	fd.mu.Unlock()
	if _, err := l.Append(mkBatch(4, 4)); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err %v, want ErrInjectedWrite", err)
	}
	// Sticky: the next append fails with the first error even though
	// the budget would now admit it.
	fd.mu.Lock()
	fd.WriteBudget = -1
	fd.mu.Unlock()
	if _, err := l.Append(mkBatch(8, 4)); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("sticky err %v, want ErrInjectedWrite", err)
	}
	l.Close()

	// Recovery after the torn write yields exactly the acked prefix.
	l2, rec, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if rec.LSN != 4 || !rec.Torn {
		t.Fatalf("recovered LSN %d torn=%v, want 4 torn=true", rec.LSN, rec.Torn)
	}
}

func TestShortWriteSurfaced(t *testing.T) {
	dir := t.TempDir()
	fd := NewFaultDir(1)
	l, _, err := Create(dir, Options{OpenFile: fd.OpenFile, Rename: fd.Rename})
	if err != nil {
		t.Fatal(err)
	}
	fd.mu.Lock()
	fd.ShortEvery = 1
	fd.mu.Unlock()
	_, err = l.Append(mkBatch(0, 4))
	if !errors.Is(err, errShortWrite) && !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err %v, want a short-write error", err)
	}
	l.Close()
}

func TestFsyncErrorPropagatesAndPoisons(t *testing.T) {
	dir := t.TempDir()
	fd := NewFaultDir(1)
	l, _, err := Create(dir, Options{OpenFile: fd.OpenFile, Rename: fd.Rename})
	if err != nil {
		t.Fatal(err)
	}
	fd.mu.Lock()
	fd.FailSyncs = true
	fd.mu.Unlock()
	if _, err := l.Append(mkBatch(0, 4)); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("err %v, want ErrInjectedSync", err)
	}
	fd.mu.Lock()
	fd.FailSyncs = false
	fd.mu.Unlock()
	if _, err := l.Append(mkBatch(4, 4)); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sticky err %v, want ErrInjectedSync", err)
	}
	if got := l.LSN(); got != 0 {
		t.Fatalf("LSN advanced past unsynced record: %d", got)
	}
	l.Close()
}

// TestCheckpointFailureDoesNotPoison: a failed checkpoint leaves the
// log appendable — the WAL still covers everything.
func TestCheckpointFailureDoesNotPoison(t *testing.T) {
	dir := t.TempDir()
	fd := NewFaultDir(1)
	l, _, err := Create(dir, Options{OpenFile: fd.OpenFile, Rename: fd.Rename})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	fd.mu.Lock()
	fd.FailSyncs = true
	fd.mu.Unlock()
	if err := l.Checkpoint([]edge.Edge{{U: 1, V: 2, T: 3}}, 1, 8); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("checkpoint err %v, want ErrInjectedSync", err)
	}
	fd.mu.Lock()
	fd.FailSyncs = false
	fd.mu.Unlock()
	if _, err := l.Append(mkBatch(4, 4)); err != nil {
		t.Fatalf("append after failed checkpoint: %v", err)
	}
	m := l.Metrics()
	if m.CheckpointErrs != 1 || m.Checkpoints != 0 {
		t.Fatalf("metrics %+v", m)
	}
	// No half-installed checkpoint on disk.
	_, ckpts, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 0 {
		t.Fatalf("checkpoints on disk after failure: %v", ckpts)
	}
	l.Close()
}

// TestCrashRecoverRandomized is the core kill-and-recover property
// test at the log layer: random batches, a crash at a random moment
// (which may tear the final record or a mid-flight checkpoint), then
// recovery must yield a prefix of the stream that includes everything
// acked, and reopened logs must keep accepting appends.
func TestCrashRecoverRandomized(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			fd := NewFaultDir(seed)
			l, _, err := Create(dir, Options{
				SegmentBytes: int64(128 + rng.Intn(512)),
				OpenFile:     fd.OpenFile,
				Rename:       fd.Rename,
			})
			if err != nil {
				t.Fatal(err)
			}
			var stream []edge.Update // all updates ever submitted, in order
			var acked uint64
			steps := 5 + rng.Intn(40)
			crashAt := rng.Intn(steps)
			for i := 0; i < steps; i++ {
				if i == crashAt {
					fd.Crash()
				}
				b := mkBatch(uint64(len(stream)), 1+rng.Intn(9))
				stream = append(stream, b...)
				if _, err := l.Append(b); err == nil {
					acked = uint64(len(stream))
				}
				if rng.Intn(10) == 0 {
					// Checkpoint with a dump standing in for "state at
					// current LSN" — at this layer only framing matters.
					l.Checkpoint([]edge.Edge{{U: 0, V: 1, T: uint32(len(stream))}}, uint64(i), 64)
				}
			}
			l.Close()
			fd.Crash() // idempotent; ensures truncation if crashAt was never hit before a failure

			l2, rec, err := Create(dir, Options{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if rec.LSN < acked {
				t.Fatalf("recovered LSN %d < acked %d — lost acknowledged updates", rec.LSN, acked)
			}
			if rec.LSN > uint64(len(stream)) {
				t.Fatalf("recovered LSN %d beyond stream %d", rec.LSN, len(stream))
			}
			// Replayed batches must be the exact stream slice
			// (checkpoint coverage aside, which this layer cannot
			// reconstruct — covered updates are represented by the dump).
			got := flatten(rec.Batches)
			from := rec.CheckpointLSN()
			want := stream[from:rec.LSN]
			if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("replayed updates [%d,%d) do not match stream", from, rec.LSN)
			}
			if base, err := l2.Append(mkBatch(rec.LSN, 3)); err != nil || base != rec.LSN {
				t.Fatalf("append after recovery: base %d err %v", base, err)
			}
			l2.Close()
		})
	}
}

// TestCrashDuringCheckpointInstall crashes between writing the temp
// checkpoint and renaming it: recovery must ignore the .tmp and serve
// from the log alone.
func TestCrashDuringCheckpointInstall(t *testing.T) {
	dir := t.TempDir()
	fd := NewFaultDir(7)
	var l *Log
	l, _, err := Create(dir, Options{
		OpenFile: fd.OpenFile,
		Rename:   fd.Rename,
		Hook: func(p string) {
			if p == "ckpt-written" {
				fd.Crash()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := mkBatch(0, 5)
	if _, err := l.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]edge.Edge{{U: 1, V: 1, T: 1}}, 1, 8); !errors.Is(err, ErrCrashed) {
		t.Fatalf("checkpoint err %v, want ErrCrashed", err)
	}
	l.Close()

	l2, rec, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if rec.Checkpoint != nil {
		t.Fatal("half-installed checkpoint was recovered")
	}
	if got := flatten(rec.Batches); !reflect.DeepEqual(got, b) {
		t.Fatalf("recovered %d updates, want %d", len(got), len(b))
	}
	// The stray .tmp must be gone after recovery.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == tmpSuffix {
			t.Fatalf("stray temp file survived recovery: %s", e.Name())
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(0, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err %v, want ErrClosed", err)
	}
}

func TestOversizeRecordStillCommits(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 32}) // smaller than any record
	if err != nil {
		t.Fatal(err)
	}
	big := mkBatch(0, 100)
	if _, err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if got := flatten(rec.Batches); !reflect.DeepEqual(got, big) {
		t.Fatalf("recovered %d updates, want %d", len(got), len(big))
	}
}
