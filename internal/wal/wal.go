// Package wal is the durability substrate of the ingest path: a
// CRC-framed, fsync-on-commit write-ahead log of structural update
// batches, with segment rotation, periodic full-graph checkpoints
// (written through internal/graphio's binary edge format), and
// crash recovery that replays checkpoint + log tail and truncates a
// torn final record.
//
// Layout of a log directory:
//
//	wal-<20-digit LSN>.seg    update records starting at that LSN
//	ckpt-<20-digit LSN>.ckpt  full edge dump covering updates < LSN
//	*.tmp                     in-flight checkpoints (ignored, deleted)
//
// The LSN is the number of individual updates committed, not batches:
// every Append advances it by len(batch), a checkpoint at LSN C makes
// all records ending at or below C prunable, and recovery reports the
// LSN it restored through so callers can line the state up against an
// acked prefix of their update stream.
//
// A segment starts with a 16-byte header (magic + base LSN) and holds
// length-prefixed records:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//	payload = u64 baseLSN | u32 count | count * (u8 op, u32 u, u32 v, u32 t)
//
// Append writes one record and fsyncs before returning — the group
// commit: callers amortize the fsync by batching updates per record
// (internal/batcher). Rotation syncs and closes the old segment before
// the new one accepts records, so only the final segment of a crashed
// log can ever hold a torn record; anything malformed earlier is
// genuine corruption and recovery refuses it rather than silently
// dropping acknowledged updates.
//
// The file abstraction (File, Options.OpenFile) exists for fault
// injection: tests wrap real files in fault.go's FaultFile to inject
// write errors, short writes, fsync failures, latency, and kill -9
// style crashes that discard unsynced bytes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"snapdyn/internal/edge"
)

const (
	segMagic    = "SNAPWAL1"
	segHdrSize  = 16 // magic(8) + baseLSN(8)
	frameHdr    = 8  // payloadLen(4) + crc(4)
	recHdrSize  = 12 // baseLSN(8) + count(4)
	updSize     = 13 // op(1) + u(4) + v(4) + t(4)
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".ckpt"
	tmpSuffix   = ".tmp"
	lsnDigits   = 20
	maxRecBytes = 1 << 30 // sanity cap on one record's payload
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports damage recovery cannot reconcile with the log's
// write discipline: a bad record before the final one, an LSN gap
// between checkpoint and first surviving segment, or a CRC-valid but
// malformed payload. A torn *final* record is not corruption — it is
// the expected shape of a crash and is truncated silently.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// File is the writable handle the log appends through. *os.File
// implements it; fault-injection tests substitute wrappers.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a log.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one
	// would exceed this size; <= 0 means 64 MiB. A single record larger
	// than the limit still commits (segments always accept at least one
	// record).
	SegmentBytes int64
	// OpenFile creates a segment or checkpoint file for writing. Nil
	// uses os.Create. Fault-injection tests substitute a wrapper;
	// reads during recovery always use the real filesystem.
	OpenFile func(path string) (File, error)
	// Rename atomically installs a checkpoint. Nil uses os.Rename;
	// the fault layer substitutes a wrapper so a simulated crash stops
	// installation exactly where a real one would.
	Rename func(oldpath, newpath string) error
	// Hook, when non-nil, is invoked at named internal points
	// ("ckpt-written" after the temp checkpoint is synced,
	// "ckpt-renamed" after it is atomically installed, before pruning).
	// It exists so crash tests can kill the process model at exactly
	// the awkward moments; production leaves it nil.
	Hook func(point string)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string) (File, error) { return os.Create(path) }
	}
	if o.Rename == nil {
		o.Rename = os.Rename
	}
	if o.Hook == nil {
		o.Hook = func(string) {}
	}
	return o
}

// Metrics counts log activity since Open.
type Metrics struct {
	// Appends is the number of committed records (= group commits);
	// AppendedUpdates the updates across them. Each append costs one
	// fsync, so AppendedUpdates/Appends is the realized group size.
	Appends         uint64
	AppendedUpdates uint64
	// Bytes is the framed record bytes written (headers included).
	Bytes uint64
	// Rotations counts segment rollovers, Checkpoints installed
	// checkpoints, CheckpointErrs failed attempts (the log stays
	// usable; the WAL still covers everything).
	Rotations      uint64
	Checkpoints    uint64
	CheckpointErrs uint64
}

// Log is an append-only update log bound to one directory. Append,
// Checkpoint, and Close serialize on an internal mutex (the intended
// caller is a single flusher goroutine); LSN and Metrics are safe from
// any goroutine. After a write or sync error the log fails sticky:
// every later Append returns the first error, because a partially
// persisted record makes the in-memory LSN unreliable until recovery
// re-establishes it.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       File
	err     error
	segBase uint64 // base LSN of the current segment
	segSize int64
	buf     []byte
	lastCkp uint64 // LSN of the newest installed checkpoint

	lsn atomic.Uint64

	metMu sync.Mutex
	met   Metrics
}

// Create opens (and if needed creates) the log directory, runs
// recovery over whatever it holds, and returns the log positioned to
// append after the last durable record, together with the recovered
// state. A fresh directory yields an empty Recovery at LSN 0.
//
// Recovery never reuses a crashed segment in place: the log always
// starts a new segment at the recovered LSN, so the append path never
// has to reason about pre-crash bytes beyond the truncation already
// applied.
func Create(dir string, opt Options) (*Log, *Recovery, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, err := recover_(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opt: opt, lastCkp: rec.CheckpointLSN()}
	l.lsn.Store(rec.LSN)
	if err := l.rotateLocked(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// LSN returns the number of updates durably committed (appended and
// fsynced) so far, including everything recovered at Create.
func (l *Log) LSN() uint64 { return l.lsn.Load() }

// Metrics returns a copy of the activity counters.
func (l *Log) Metrics() Metrics {
	l.metMu.Lock()
	defer l.metMu.Unlock()
	return l.met
}

// Append frames the batch as one record, writes it to the current
// segment, and fsyncs — the commit point. It returns the record's base
// LSN; the batch occupies [base, base+len). An empty batch is a no-op.
// On error nothing is acknowledged: the record may be partially on
// disk, recovery will truncate it, and the log fails sticky.
func (l *Log) Append(batch []edge.Update) (uint64, error) {
	if len(batch) == 0 {
		return l.lsn.Load(), nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	need := int64(frameHdr + recHdrSize + updSize*len(batch))
	if l.segSize+need > l.opt.SegmentBytes && l.segSize > segHdrSize {
		if err := l.rotateLocked(); err != nil {
			return 0, l.fail(err)
		}
	}
	base := l.lsn.Load()
	l.buf = encodeRecord(l.buf[:0], base, batch)
	if err := writeFull(l.f, l.buf); err != nil {
		return 0, l.fail(fmt.Errorf("wal: append: %w", err))
	}
	if err := l.f.Sync(); err != nil {
		return 0, l.fail(fmt.Errorf("wal: commit sync: %w", err))
	}
	l.segSize += int64(len(l.buf))
	l.lsn.Store(base + uint64(len(batch)))
	l.metMu.Lock()
	l.met.Appends++
	l.met.AppendedUpdates += uint64(len(batch))
	l.met.Bytes += uint64(len(l.buf))
	l.metMu.Unlock()
	return base, nil
}

// fail records the first error and poisons the log.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return err
}

// rotateLocked syncs and closes the current segment (if any) and
// starts a new one at the current LSN. Called with l.mu held.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
		l.metMu.Lock()
		l.met.Rotations++
		l.metMu.Unlock()
	}
	base := l.lsn.Load()
	path := filepath.Join(l.dir, fmt.Sprintf("%s%0*d%s", segPrefix, lsnDigits, base, segSuffix))
	f, err := l.opt.OpenFile(path)
	if err != nil {
		return err
	}
	var hdr [segHdrSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], base)
	if err := writeFull(f, hdr[:]); err != nil {
		f.Close()
		return err
	}
	// The header must be durable before any record: a segment whose
	// header did not survive a crash is treated as empty by recovery,
	// which is only sound if records cannot precede it on disk.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segBase = base
	l.segSize = segHdrSize
	return nil
}

// Close syncs and closes the current segment. The log is unusable
// afterwards; reopen with Create.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	f := l.f
	l.f = nil
	if l.err == nil {
		l.err = ErrClosed
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	f.Close()
	return nil
}

// encodeRecord appends the framed record for batch at base to dst.
func encodeRecord(dst []byte, base uint64, batch []edge.Update) []byte {
	payloadLen := recHdrSize + updSize*len(batch)
	var b [frameHdr + recHdrSize]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(payloadLen))
	// crc patched below, after the payload is assembled.
	binary.LittleEndian.PutUint64(b[8:], base)
	binary.LittleEndian.PutUint32(b[16:], uint32(len(batch)))
	at := len(dst)
	dst = append(dst, b[:]...)
	var u [updSize]byte
	for _, up := range batch {
		u[0] = byte(up.Op)
		binary.LittleEndian.PutUint32(u[1:], up.U)
		binary.LittleEndian.PutUint32(u[5:], up.V)
		binary.LittleEndian.PutUint32(u[9:], up.T)
		dst = append(dst, u[:]...)
	}
	crc := crc32.Checksum(dst[at+frameHdr:], crcTable)
	binary.LittleEndian.PutUint32(dst[at+4:], crc)
	return dst
}

// writeFull writes all of p, converting a silent short write into an
// explicit error (io.Writer implementations must error on short
// writes, but the fault layer deliberately produces them).
func writeFull(w io.Writer, p []byte) error {
	n, err := w.Write(p)
	if err != nil {
		return err
	}
	if n < len(p) {
		return io.ErrShortWrite
	}
	return nil
}

// syncDir fsyncs a directory so entry creation/rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// segName parses a segment filename, returning its base LSN.
func segName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(mid) != lsnDigits {
		return 0, false
	}
	var lsn uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		lsn = lsn*10 + uint64(c-'0')
	}
	return lsn, true
}

// ckptName parses a checkpoint filename, returning its covered LSN.
func ckptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	mid := name[len(ckptPrefix) : len(name)-len(ckptSuffix)]
	if len(mid) != lsnDigits {
		return 0, false
	}
	var lsn uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		lsn = lsn*10 + uint64(c-'0')
	}
	return lsn, true
}

// listDir enumerates segments and checkpoints by LSN, ascending, and
// collects stray temp files left by crashed checkpoints.
func listDir(dir string) (segs, ckpts []uint64, tmps []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if lsn, ok := segName(name); ok {
			segs = append(segs, lsn)
		} else if lsn, ok := ckptName(name); ok {
			ckpts = append(ckpts, lsn)
		} else if strings.HasSuffix(name, tmpSuffix) {
			tmps = append(tmps, filepath.Join(dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return segs, ckpts, tmps, nil
}

func segPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%0*d%s", segPrefix, lsnDigits, lsn, segSuffix))
}

func ckptPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%0*d%s", ckptPrefix, lsnDigits, lsn, ckptSuffix))
}
