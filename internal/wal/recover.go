package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"snapdyn/internal/edge"
)

// Recovery is the durable state reconstructed from a log directory:
// the newest valid checkpoint (nil when none) plus every complete
// record after it, in commit order. The caller rebuilds its store by
// applying Checkpoint.Edges as insertions and then each batch of
// Batches in order; the resulting graph reflects exactly the updates
// with LSN < LSN — a prefix of the original commit sequence that
// includes every acknowledged batch (acks happen only after the
// record's fsync returned).
type Recovery struct {
	// Checkpoint is the newest valid checkpoint, nil if none survived
	// (fresh log, or everything still lives in segments).
	Checkpoint *CheckpointInfo
	// Batches are the committed records after the checkpoint, in
	// order. Batches[i] replays the updates [BaseLSNs[i],
	// BaseLSNs[i]+len(Batches[i])).
	Batches  [][]edge.Update
	BaseLSNs []uint64
	// LSN is the update count recovered through: Checkpoint coverage
	// plus every replayed batch.
	LSN uint64
	// Torn reports that a partially persisted final record (or a
	// header-less final segment) was found and truncated — the
	// expected crash shape, not an error.
	Torn bool
}

// CheckpointLSN returns the recovered checkpoint's LSN, 0 if none.
func (r *Recovery) CheckpointLSN() uint64 {
	if r.Checkpoint == nil {
		return 0
	}
	return r.Checkpoint.LSN
}

// Updates returns the total updates awaiting replay across Batches.
func (r *Recovery) Updates() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b)
	}
	return n
}

// recover_ scans dir and reconstructs the durable state. It mutates
// the directory only to truncate a torn final record and delete stray
// temp files; deciding what to do with the recovered state is the
// caller's job.
func recover_(dir string) (*Recovery, error) {
	segs, ckpts, tmps, err := listDir(dir)
	if err != nil {
		return nil, err
	}
	for _, t := range tmps {
		os.Remove(t)
	}

	rec := &Recovery{}

	// Newest checkpoint that parses wins. An invalid newer one (only
	// possible through disk corruption — installation is atomic) falls
	// back to an older one; the segment-coverage check below rejects
	// the fallback if pruning already removed the records it needs.
	for i := len(ckpts) - 1; i >= 0; i-- {
		info, err := readCheckpoint(ckptPath(dir, ckpts[i]))
		if err == nil {
			rec.Checkpoint = info
			break
		}
	}
	ckptLSN := rec.CheckpointLSN()
	rec.LSN = ckptLSN

	// Drop segments entirely covered by the checkpoint (a crashed
	// prune can leave them behind): segment i is covered when the next
	// segment starts at or below the checkpoint LSN.
	start := 0
	for start+1 < len(segs) && segs[start+1] <= ckptLSN {
		start++
	}
	segs = segs[start:]
	if len(segs) == 0 {
		return rec, nil
	}
	if segs[0] > ckptLSN {
		return nil, fmt.Errorf("%w: first segment starts at LSN %d, checkpoint covers %d — log has a gap",
			ErrCorrupt, segs[0], ckptLSN)
	}

	expect := segs[0]
	for i, base := range segs {
		last := i == len(segs)-1
		if base != expect {
			return nil, fmt.Errorf("%w: segment at LSN %d, expected %d", ErrCorrupt, base, expect)
		}
		next, torn, err := scanSegment(segPath(dir, base), base, last, ckptLSN, rec)
		if err != nil {
			return nil, err
		}
		if torn {
			rec.Torn = true
		}
		expect = next
	}
	rec.LSN = expect
	if rec.LSN < ckptLSN {
		// Segments ended before the checkpoint's coverage; the
		// checkpoint itself carries the state, so the LSN is its.
		rec.LSN = ckptLSN
	}
	return rec, nil
}

// scanSegment replays one segment's complete records into rec and
// returns the LSN after its last complete record. In the final
// segment an *incomplete* tail record — the only shape a crash can
// produce, since each record is written as one sequential buffer and
// so persists only as a prefix — is truncated in place and reported as
// torn. A complete-length frame that fails validation (CRC, framing,
// LSN) is genuine corruption everywhere, final segment included: a
// tear cannot produce it, so truncating would silently drop
// acknowledged updates. Records at or below skipLSN (covered by the
// checkpoint) are validated but not replayed.
func scanSegment(path string, base uint64, last bool, skipLSN uint64, rec *Recovery) (uint64, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	if len(data) < segHdrSize {
		if !last {
			return 0, false, fmt.Errorf("%w: segment %s: truncated header", ErrCorrupt, path)
		}
		// A final segment whose header never became durable holds no
		// committed records (the header is synced before any record):
		// drop the file entirely.
		if err := os.Remove(path); err != nil {
			return 0, false, err
		}
		return base, true, nil
	}
	if string(data[:8]) != segMagic || binary.LittleEndian.Uint64(data[8:16]) != base {
		// A complete header with wrong contents cannot come from a
		// tear — the 16 bytes are written in one sequential call.
		return 0, false, fmt.Errorf("%w: segment %s: bad header", ErrCorrupt, path)
	}

	off := segHdrSize
	lsn := base
	for {
		frame, count, st := parseFrame(data, off, lsn)
		if st != frameOK {
			if off == len(data) {
				return lsn, false, nil // clean end
			}
			if st == frameInvalid || !last {
				return 0, false, fmt.Errorf("%w: segment %s: bad record at offset %d", ErrCorrupt, path, off)
			}
			if err := os.Truncate(path, int64(off)); err != nil {
				return 0, false, err
			}
			return lsn, true, nil
		}
		if lsn+uint64(count) > skipLSN {
			batch := decodeUpdates(data[off+frameHdr+recHdrSize:off+frame], count)
			if lsn < skipLSN {
				// A record straddling the checkpoint boundary cannot be
				// produced by this log (checkpoints cut at batch
				// boundaries) but is cheap to honor: replay the suffix.
				batch = batch[skipLSN-lsn:]
				rec.BaseLSNs = append(rec.BaseLSNs, skipLSN)
			} else {
				rec.BaseLSNs = append(rec.BaseLSNs, lsn)
			}
			rec.Batches = append(rec.Batches, batch)
		}
		lsn += uint64(count)
		off += frame
	}
}

// frameStatus classifies the bytes at a record offset.
type frameStatus int

const (
	frameOK frameStatus = iota
	// frameIncomplete: the record extends past EOF (or its frame
	// header does) — the shape of a torn tail, truncatable in the
	// final segment.
	frameIncomplete
	// frameInvalid: a fully present frame that fails validation — a
	// tear cannot produce this, so it is corruption wherever it sits.
	frameInvalid
)

// parseFrame validates the record at off, returning the full frame
// length and update count.
func parseFrame(data []byte, off int, expectLSN uint64) (frame, count int, st frameStatus) {
	if off+frameHdr > len(data) {
		return 0, 0, frameIncomplete
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if payloadLen < recHdrSize || payloadLen > maxRecBytes {
		return 0, 0, frameInvalid
	}
	if off+frameHdr+payloadLen > len(data) {
		return 0, 0, frameIncomplete
	}
	payload := data[off+frameHdr : off+frameHdr+payloadLen]
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, 0, frameInvalid
	}
	base := binary.LittleEndian.Uint64(payload)
	n := int(binary.LittleEndian.Uint32(payload[8:]))
	if base != expectLSN || payloadLen != recHdrSize+updSize*n {
		return 0, 0, frameInvalid
	}
	return frameHdr + payloadLen, n, frameOK
}

// decodeUpdates parses count updates from payload bytes.
func decodeUpdates(p []byte, count int) []edge.Update {
	out := make([]edge.Update, count)
	for i := range out {
		b := p[i*updSize:]
		out[i] = edge.Update{
			Op: edge.Op(b[0]),
			Edge: edge.Edge{
				U: binary.LittleEndian.Uint32(b[1:]),
				V: binary.LittleEndian.Uint32(b[5:]),
				T: binary.LittleEndian.Uint32(b[9:]),
			},
		}
	}
	return out
}
