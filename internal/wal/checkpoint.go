package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"snapdyn/internal/edge"
	"snapdyn/internal/graphio"
)

const (
	ckptMagic   = "SNAPCKP1"
	ckptHdrSize = 48 // magic(8) + lsn(8) + epoch(8) + n(8) + payloadLen(8) + reserved(8)
	ckptFtrSize = 4  // crc32c(payload)
)

// Checkpoint durably installs a full edge dump covering every update
// with LSN below the log's current LSN, then prunes segments and older
// checkpoints the new one makes redundant. epoch and n are carried in
// the header for the recovery side: epoch lets the serving layer keep
// its published epochs monotone across restarts, n pins the vertex-set
// size the dump was taken against.
//
// The dump is written to a temp file, synced, and renamed into place —
// a crash mid-checkpoint leaves only an ignorable .tmp, never a
// half-valid checkpoint — and pruning happens strictly after the
// rename is durable, so recovery always finds either the old complete
// state or the new complete state.
//
// A checkpoint failure leaves the log fully usable: the WAL still
// covers everything, so the error is recorded in Metrics and returned
// for observability, not poisoning.
func (l *Log) Checkpoint(edges []edge.Edge, epoch uint64, n int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil && l.err != ErrClosed {
		return l.err
	}
	lsn := l.lsn.Load()
	err := l.writeCheckpoint(edges, lsn, epoch, n)
	l.metMu.Lock()
	if err != nil {
		l.met.CheckpointErrs++
	} else {
		l.met.Checkpoints++
	}
	l.metMu.Unlock()
	if err != nil {
		return err
	}
	l.lastCkp = lsn
	l.pruneLocked(lsn)
	return nil
}

// LastCheckpointLSN returns the LSN of the newest installed
// checkpoint (including one recovered at Create), 0 if none.
func (l *Log) LastCheckpointLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastCkp
}

func (l *Log) writeCheckpoint(edges []edge.Edge, lsn, epoch uint64, n int) error {
	final := ckptPath(l.dir, lsn)
	tmp := final + tmpSuffix
	f, err := l.opt.OpenFile(tmp)
	if err != nil {
		return err
	}
	payloadLen := int64(len(graphio.Magic)) + 8 + 12*int64(len(edges))
	var hdr [ckptHdrSize]byte
	copy(hdr[:8], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[8:], lsn)
	binary.LittleEndian.PutUint64(hdr[16:], epoch)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(payloadLen))
	if err := writeFull(f, hdr[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	cw := &crcWriter{w: f}
	if err := graphio.WriteBinary(cw, edges); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if cw.n != payloadLen {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint payload %d bytes, want %d", cw.n, payloadLen)
	}
	var ftr [ckptFtrSize]byte
	binary.LittleEndian.PutUint32(ftr[:], cw.crc)
	if err := writeFull(f, ftr[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	l.opt.Hook("ckpt-written")
	if err := l.opt.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.opt.Hook("ckpt-renamed")
	return nil
}

// pruneLocked removes checkpoints older than the one just installed
// and segments whose every record is covered by it (a segment is
// covered when the next segment starts at or below the checkpoint
// LSN). Pruning is best-effort: a leftover file only wastes space and
// is ignored by recovery.
func (l *Log) pruneLocked(ckptLSN uint64) {
	segs, ckpts, tmps, err := listDir(l.dir)
	if err != nil {
		return
	}
	for _, t := range tmps {
		os.Remove(t)
	}
	for _, c := range ckpts {
		if c < ckptLSN {
			os.Remove(ckptPath(l.dir, c))
		}
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= ckptLSN && segs[i] < l.segBase {
			os.Remove(segPath(l.dir, segs[i]))
		}
	}
	syncDir(l.dir)
}

// crcWriter forwards to w while accumulating a crc32c and byte count.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crcTable, p[:n])
	c.n += int64(n)
	return n, err
}

// Checkpoint is a recovered checkpoint: the edge dump plus the header
// metadata recovery hands back to the serving layer.
type CheckpointInfo struct {
	// LSN is the update count the dump covers: replay starts here.
	LSN uint64
	// Epoch is the snapshot epoch recorded when the dump was cut; the
	// serving layer uses it to keep published epochs monotone across
	// restarts.
	Epoch uint64
	// N is the vertex-set size the dump was taken against.
	N int
	// Edges is the dumped live edge multiset.
	Edges []edge.Edge
}

// readCheckpoint parses and validates one checkpoint file. Invalid in
// any way (short, bad magic, size mismatch, CRC mismatch) returns an
// error; recovery falls back to an older checkpoint only when the
// segments still cover the gap.
func readCheckpoint(path string) (*CheckpointInfo, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [ckptHdrSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: checkpoint header: %v", ErrCorrupt, err)
	}
	if string(hdr[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: checkpoint magic %q", ErrCorrupt, hdr[:8])
	}
	lsn := binary.LittleEndian.Uint64(hdr[8:])
	epoch := binary.LittleEndian.Uint64(hdr[16:])
	n := binary.LittleEndian.Uint64(hdr[24:])
	payloadLen := binary.LittleEndian.Uint64(hdr[32:])
	// The header's payload length must exactly account for the file:
	// checking against the real size before allocating bounds memory by
	// what is actually on disk, bogus header or not.
	if int64(payloadLen) != st.Size()-ckptHdrSize-ckptFtrSize {
		return nil, fmt.Errorf("%w: checkpoint payload length %d does not match file size %d",
			ErrCorrupt, payloadLen, st.Size())
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("%w: checkpoint payload: %v", ErrCorrupt, err)
	}
	var ftr [ckptFtrSize]byte
	if _, err := io.ReadFull(f, ftr[:]); err != nil {
		return nil, fmt.Errorf("%w: checkpoint footer: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(ftr[:]) {
		return nil, fmt.Errorf("%w: checkpoint crc mismatch", ErrCorrupt)
	}
	edges, _, err := graphio.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint edges: %v", ErrCorrupt, err)
	}
	return &CheckpointInfo{LSN: lsn, Epoch: epoch, N: int(n), Edges: edges}, nil
}
