package wal

import (
	"errors"
	"math/rand"
	"os"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation on a FaultDir after Crash:
// the simulated machine is off.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrInjectedWrite and ErrInjectedSync are the scheduled fault errors.
var (
	ErrInjectedWrite = errors.New("wal: injected write error (disk full)")
	ErrInjectedSync  = errors.New("wal: injected fsync error")
)

// FaultDir is the fault-injection filesystem model backing a log
// directory: files created through OpenFile are real files wrapped so
// that writes can fail (disk full), be short, or be delayed, fsync can
// fail, and — the headline — Crash simulates a kill -9 / power cut by
// truncating every file to a random point between its last synced
// offset and its written offset, exactly the guarantee (and only the
// guarantee) fsync gives: synced bytes survive, unsynced bytes may
// partially survive in any prefix.
//
// Wire it into a log with Options{OpenFile: d.OpenFile}. After Crash,
// recover by reopening the directory with plain os I/O (wal.Create
// reads through the real filesystem).
type FaultDir struct {
	mu    sync.Mutex
	files []*FaultFile
	rng   *rand.Rand

	crashed bool

	// Injection knobs; all zero means transparent pass-through. Set
	// them between operations (they are read under the dir lock).

	// WriteBudget, when >= 0, is the bytes writable before the disk is
	// full: a write crossing it persists the prefix that fits and
	// returns ErrInjectedWrite; later writes fail outright.
	WriteBudget int64
	// ShortEvery makes every Nth write a short write (half the bytes,
	// io.ErrShortWrite). 0 disables.
	ShortEvery int
	// FailSyncs makes every Sync return ErrInjectedSync without
	// syncing.
	FailSyncs bool
	// WriteDelay sleeps before every write, modelling slow media.
	WriteDelay time.Duration

	writes  int
	written int64
}

// NewFaultDir models faults over real files under any directory; seed
// drives the crash truncation choices.
func NewFaultDir(seed int64) *FaultDir {
	return &FaultDir{rng: rand.New(rand.NewSource(seed)), WriteBudget: -1}
}

// OpenFile is the Options.OpenFile hook: create a real file wrapped in
// fault tracking.
func (d *FaultDir) OpenFile(path string) (File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	ff := &FaultFile{d: d, f: f, path: path}
	d.files = append(d.files, ff)
	return ff, nil
}

// Crash simulates the machine dying: all subsequent operations on
// every file fail with ErrCrashed, and each file is truncated to a
// random length in [synced, written] — the unsynced suffix may survive
// fully, partially, or not at all. Safe to call from any goroutine,
// including concurrently with in-flight writes (the crash point lands
// between write calls, like a real power cut between sector commits).
func (d *FaultDir) Crash() {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return
	}
	d.crashed = true
	files := append([]*FaultFile(nil), d.files...)
	rng := d.rng
	d.mu.Unlock()

	for _, ff := range files {
		ff.mu.Lock()
		keep := ff.synced
		if ff.written > ff.synced {
			keep += rng.Int63n(ff.written - ff.synced + 1)
		}
		if ff.f != nil {
			ff.f.Close()
			ff.f = nil
		}
		os.Truncate(ff.path, keep)
		ff.mu.Unlock()
	}
}

// Rename is the Options.Rename hook: a real rename that fails after a
// simulated crash, so a checkpoint cannot be installed by a dead
// machine.
func (d *FaultDir) Rename(oldpath, newpath string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	return os.Rename(oldpath, newpath)
}

// Crashed reports whether Crash has been called.
func (d *FaultDir) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// FaultFile wraps one real file with the directory's fault model,
// tracking written vs synced offsets so Crash can discard exactly the
// bytes a real crash could.
type FaultFile struct {
	d    *FaultDir
	mu   sync.Mutex
	f    *os.File
	path string

	written int64
	synced  int64
}

// Write implements io.Writer with the directory's injected faults.
func (ff *FaultFile) Write(p []byte) (int, error) {
	ff.d.mu.Lock()
	if ff.d.crashed {
		ff.d.mu.Unlock()
		return 0, ErrCrashed
	}
	ff.d.writes++
	lim := len(p)
	var failErr error
	if ff.d.WriteBudget >= 0 {
		if room := ff.d.WriteBudget - ff.d.written; int64(lim) > room {
			lim = int(max(0, room))
			failErr = ErrInjectedWrite
		}
	}
	if failErr == nil && ff.d.ShortEvery > 0 && ff.d.writes%ff.d.ShortEvery == 0 && lim > 1 {
		lim = lim / 2
		failErr = errShortWrite
	}
	delay := ff.d.WriteDelay
	ff.d.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}

	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.f == nil {
		return 0, ErrCrashed
	}
	n, err := ff.f.Write(p[:lim])
	ff.written += int64(n)
	ff.d.mu.Lock()
	ff.d.written += int64(n)
	ff.d.mu.Unlock()
	if err == nil && failErr != nil {
		err = failErr
	}
	return n, err
}

var errShortWrite = errors.New("wal: injected short write")

// Sync implements File: on success the written prefix becomes
// crash-proof.
func (ff *FaultFile) Sync() error {
	ff.d.mu.Lock()
	if ff.d.crashed {
		ff.d.mu.Unlock()
		return ErrCrashed
	}
	fail := ff.d.FailSyncs
	ff.d.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.f == nil {
		return ErrCrashed
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ff.synced = ff.written
	return nil
}

// Close implements File. Closing does not sync: bytes written but
// never synced remain crash-vulnerable, as on a real system.
func (ff *FaultFile) Close() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.f == nil {
		return nil
	}
	err := ff.f.Close()
	ff.f = nil
	return err
}
