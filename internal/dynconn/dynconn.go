// Package dynconn maintains graph connectivity under edge insertions and
// deletions — the paper's "dynamic forest problem": keeping a spanning
// forest that changes over time so that path-existence queries never
// recompute from scratch.
//
// The structure combines the paper's two building blocks:
//
//   - a dynamic adjacency store (any dyngraph.Store) holding the actual
//     multigraph, and
//   - a parent-pointer link-cut forest (internal/lct) holding one
//     spanning tree per component.
//
// Insertions are O(diameter): if the endpoints are in different trees the
// new edge becomes a tree edge (re-rooting the smaller tree, then link).
// Deletions of non-tree edges are O(scan); deletions of tree edges split
// the tree and search the smaller side for a replacement edge — the
// classic spanning-forest repair, bounded by the smaller component's
// size. Small-world networks keep both trees shallow and replacement
// searches short in practice.
//
// Queries are two findroot walks, exactly as in the static case.
package dynconn

import (
	"fmt"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
)

// noParent marks a forest root in the parent array.
const noParent = ^uint32(0)

// Index maintains connectivity over an undirected dynamic multigraph.
// Methods are not safe for concurrent mutation; queries (Connected,
// FindRoot) may run concurrently with each other but not with updates.
type Index struct {
	store dyngraph.Store
	// parent is the spanning forest (link-cut tree as a flat parent
	// array, as in internal/lct).
	parent []uint32
	// onTree marks, per vertex, the parent edge's "tree" status needs no
	// extra bookkeeping: an arc (u,parent[u]) is a tree edge by
	// definition. treeEdges counts them for diagnostics.
	treeEdges int64
	// edges counts live undirected edges (self-loops count once).
	edges int64
	// scratch buffers reused by splits and searches.
	queue []uint32
	mark  []uint32
	epoch uint32
}

// New creates an index over n vertices backed by the given store (the
// store must be empty; use InsertEdge to populate). A nil store defaults
// to the hybrid representation.
func New(n int, store dyngraph.Store) *Index {
	if store == nil {
		store = dyngraph.NewHybrid(n, 8*n, 0, 1)
	}
	if store.NumVertices() != n || store.NumEdges() != 0 {
		panic("dynconn: store must be empty and sized to n")
	}
	p := make([]uint32, n)
	for i := range p {
		p[i] = noParent
	}
	return &Index{
		store:  store,
		parent: p,
		mark:   make([]uint32, n),
	}
}

// NumVertices returns the vertex-set size.
func (x *Index) NumVertices() int { return len(x.parent) }

// NumEdges returns the number of live undirected edges.
func (x *Index) NumEdges() int64 { return x.edges }

// TreeEdges returns the current spanning-forest size (diagnostic).
func (x *Index) TreeEdges() int64 { return x.treeEdges }

// EachTreeEdge calls fn once per spanning-forest tree edge (child,
// parent). Union-ing exactly these pairs reproduces the index's
// connectivity partition — the label-merge hook a sharded fleet uses to
// join per-shard forests into fleet-wide connectivity.
func (x *Index) EachTreeEdge(fn func(u, v edge.ID)) {
	for v, p := range x.parent {
		if p != noParent {
			fn(edge.ID(v), p)
		}
	}
}

// FindRoot walks to the representative of v's component.
func (x *Index) FindRoot(v edge.ID) edge.ID {
	for x.parent[v] != noParent {
		v = x.parent[v]
	}
	return v
}

// Connected reports whether u and v are currently connected.
func (x *Index) Connected(u, v edge.ID) bool {
	return x.FindRoot(u) == x.FindRoot(v)
}

// InsertEdge adds the undirected edge {u, v} at time t. If it joins two
// components it becomes a tree edge.
func (x *Index) InsertEdge(u, v edge.ID, t uint32) {
	x.store.Insert(u, v, t)
	x.edges++
	if u == v {
		return
	}
	x.store.Insert(v, u, t)
	ru, rv := x.FindRoot(u), x.FindRoot(v)
	if ru == rv {
		return
	}
	// Join: re-root u's tree at u, then hang it under v.
	x.reroot(u)
	x.parent[u] = v
	x.treeEdges++
}

// reroot makes v the root of its tree by reversing the parent pointers
// on the v-to-root path (O(height), and heights stay small on
// small-world components).
func (x *Index) reroot(v edge.ID) {
	prev := noParent
	cur := v
	for cur != noParent {
		next := x.parent[cur]
		x.parent[cur] = prev
		prev = cur
		cur = next
	}
}

// DeleteEdge removes one undirected edge {u, v}, repairing the spanning
// forest if a tree edge was cut. It reports whether the edge existed.
func (x *Index) DeleteEdge(u, v edge.ID) bool {
	if !x.store.Delete(u, v) {
		return false
	}
	x.edges--
	if u == v {
		return true
	}
	x.store.Delete(v, u)
	// Tree edge iff one endpoint is the other's parent.
	switch {
	case x.parent[u] == v:
		x.cutAndRepair(u, v)
	case x.parent[v] == u:
		x.cutAndRepair(v, u)
	default:
		// Non-tree edge: forest unaffected. But the store might still
		// hold a parallel copy of (u,v) that could serve as a tree edge
		// later; nothing to do now.
	}
	return true
}

// cutAndRepair detaches child from parentSide (the tree edge
// child->parentSide was deleted from the store already), then searches
// child's subtree for a replacement edge back to the rest of the tree.
func (x *Index) cutAndRepair(child, parentSide edge.ID) {
	x.parent[child] = noParent
	x.treeEdges--

	// A parallel copy of the deleted edge may remain in the multigraph;
	// the replacement search below finds it naturally (child's component
	// scan sees the surviving (child, parentSide) arc).

	// Collect child's component by BFS over the *store* restricted to
	// vertices whose root is child. Simpler and correct: BFS over store
	// from child following arcs only to vertices currently rooted at
	// child (tree membership), looking for any arc leaving the set.
	x.epoch++
	ep := x.epoch
	x.queue = x.queue[:0]
	x.queue = append(x.queue, uint32(child))
	x.mark[child] = ep

	var bridgeFrom, bridgeTo edge.ID
	found := false
	for i := 0; i < len(x.queue) && !found; i++ {
		w := x.queue[i]
		x.store.Neighbors(w, func(nb edge.ID, _ uint32) bool {
			if x.mark[nb] == ep {
				return true
			}
			if x.FindRoot(nb) == x.FindRoot(child) {
				// Same (detached) tree: keep exploring.
				x.mark[nb] = ep
				x.queue = append(x.queue, nb)
				return true
			}
			// Replacement edge found: w is in the detached tree, nb
			// outside it.
			bridgeFrom, bridgeTo = w, nb
			found = true
			return false
		})
	}
	if found {
		x.reroot(bridgeFrom)
		x.parent[bridgeFrom] = bridgeTo
		x.treeEdges++
	}
}

// ComponentCount walks the forest and counts roots of non-empty trees
// plus isolated vertices (diagnostic, O(n)).
func (x *Index) ComponentCount() int {
	c := 0
	for v := range x.parent {
		if x.parent[v] == noParent {
			c++
		}
	}
	return c
}

// CheckInvariants verifies structural sanity: the forest is acyclic,
// every tree edge exists in the store, and connectivity implied by tree
// membership matches store reachability on sampled pairs. Used by tests;
// O(n·height + m).
func (x *Index) CheckInvariants() error {
	n := len(x.parent)
	for v := 0; v < n; v++ {
		// Acyclicity: walking up must terminate within n hops.
		hops := 0
		cur := uint32(v)
		for x.parent[cur] != noParent {
			cur = x.parent[cur]
			hops++
			if hops > n {
				return fmt.Errorf("dynconn: cycle through vertex %d", v)
			}
		}
		// Tree edges must be live in the store.
		if p := x.parent[v]; p != noParent && !x.store.Has(edge.ID(v), p) {
			return fmt.Errorf("dynconn: tree edge (%d,%d) missing from store", v, p)
		}
	}
	return nil
}
