package dynconn

import (
	"testing"
	"testing/quick"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

// naive is a recompute-from-scratch connectivity oracle.
type naive struct {
	n   int
	adj map[[2]uint32]int // undirected edge multiset
}

func newNaive(n int) *naive {
	return &naive{n: n, adj: map[[2]uint32]int{}}
}

func key(u, v uint32) [2]uint32 {
	if u > v {
		u, v = v, u
	}
	return [2]uint32{u, v}
}

func (o *naive) insert(u, v uint32) { o.adj[key(u, v)]++ }

func (o *naive) delete(u, v uint32) bool {
	k := key(u, v)
	if o.adj[k] == 0 {
		return false
	}
	o.adj[k]--
	if o.adj[k] == 0 {
		delete(o.adj, k)
	}
	return true
}

func (o *naive) connected(u, v uint32) bool {
	if u == v {
		return true
	}
	nbr := map[uint32][]uint32{}
	for k := range o.adj {
		nbr[k[0]] = append(nbr[k[0]], k[1])
		nbr[k[1]] = append(nbr[k[1]], k[0])
	}
	seen := map[uint32]bool{u: true}
	queue := []uint32{u}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if w == v {
			return true
		}
		for _, x := range nbr[w] {
			if !seen[x] {
				seen[x] = true
				queue = append(queue, x)
			}
		}
	}
	return false
}

func (o *naive) components() int {
	seen := map[uint32]bool{}
	nbr := map[uint32][]uint32{}
	for k := range o.adj {
		nbr[k[0]] = append(nbr[k[0]], k[1])
		nbr[k[1]] = append(nbr[k[1]], k[0])
	}
	c := 0
	for v := uint32(0); v < uint32(o.n); v++ {
		if seen[v] {
			continue
		}
		c++
		queue := []uint32{v}
		seen[v] = true
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			for _, x := range nbr[w] {
				if !seen[x] {
					seen[x] = true
					queue = append(queue, x)
				}
			}
		}
	}
	return c
}

func TestInsertJoinsComponents(t *testing.T) {
	x := New(6, nil)
	if x.Connected(0, 1) {
		t.Fatal("fresh vertices connected")
	}
	x.InsertEdge(0, 1, 1)
	x.InsertEdge(2, 3, 2)
	if !x.Connected(0, 1) || x.Connected(1, 2) {
		t.Fatal("insert connectivity wrong")
	}
	x.InsertEdge(1, 2, 3)
	if !x.Connected(0, 3) {
		t.Fatal("chained components not connected")
	}
	if x.TreeEdges() != 3 {
		t.Fatalf("tree edges = %d, want 3", x.TreeEdges())
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNonTreeInsertKeepsForest(t *testing.T) {
	x := New(4, nil)
	x.InsertEdge(0, 1, 1)
	x.InsertEdge(1, 2, 2)
	before := x.TreeEdges()
	x.InsertEdge(0, 2, 3) // cycle edge
	if x.TreeEdges() != before {
		t.Fatal("cycle edge became a tree edge")
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNonTreeEdge(t *testing.T) {
	x := New(4, nil)
	x.InsertEdge(0, 1, 1)
	x.InsertEdge(1, 2, 2)
	x.InsertEdge(0, 2, 3)
	if !x.DeleteEdge(0, 2) {
		t.Fatal("delete failed")
	}
	if !x.Connected(0, 2) {
		t.Fatal("deleting a cycle edge disconnected the component")
	}
}

func TestDeleteTreeEdgeWithReplacement(t *testing.T) {
	x := New(4, nil)
	x.InsertEdge(0, 1, 1) // tree
	x.InsertEdge(1, 2, 2) // tree
	x.InsertEdge(0, 2, 3) // cycle
	if !x.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	if !x.Connected(0, 1) {
		t.Fatal("replacement edge not found")
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTreeEdgeSplits(t *testing.T) {
	x := New(4, nil)
	x.InsertEdge(0, 1, 1)
	x.InsertEdge(1, 2, 2)
	if !x.DeleteEdge(1, 2) {
		t.Fatal("delete failed")
	}
	if x.Connected(1, 2) || x.Connected(0, 2) {
		t.Fatal("component did not split")
	}
	if !x.Connected(0, 1) {
		t.Fatal("surviving edge lost")
	}
}

func TestParallelEdgesSurviveDeletion(t *testing.T) {
	x := New(3, nil)
	x.InsertEdge(0, 1, 1)
	x.InsertEdge(0, 1, 2) // parallel copy
	if !x.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	if !x.Connected(0, 1) {
		t.Fatal("parallel copy should keep endpoints connected")
	}
	if !x.DeleteEdge(0, 1) {
		t.Fatal("second delete failed")
	}
	if x.Connected(0, 1) {
		t.Fatal("still connected after both copies deleted")
	}
}

func TestSelfLoops(t *testing.T) {
	x := New(3, nil)
	x.InsertEdge(1, 1, 5)
	if x.NumEdges() != 1 {
		t.Fatalf("m = %d", x.NumEdges())
	}
	if !x.Connected(1, 1) {
		t.Fatal("self connectivity")
	}
	if !x.DeleteEdge(1, 1) || x.DeleteEdge(1, 1) {
		t.Fatal("self loop delete wrong")
	}
}

func TestDeleteAbsent(t *testing.T) {
	x := New(3, nil)
	if x.DeleteEdge(0, 1) {
		t.Fatal("delete of absent edge succeeded")
	}
}

func TestAgainstOracleRandomOps(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		const n = 20
		r := xrand.New(seed)
		x := New(n, nil)
		o := newNaive(n)
		type e struct{ u, v uint32 }
		var live []e
		for op := 0; op < 250; op++ {
			if len(live) > 0 && r.Float64() < 0.4 {
				i := r.Intn(len(live))
				ed := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if x.DeleteEdge(ed.u, ed.v) != o.delete(ed.u, ed.v) {
					return false
				}
			} else {
				u, v := r.Uint32n(n), r.Uint32n(n)
				x.InsertEdge(u, v, uint32(op))
				o.insert(u, v)
				live = append(live, e{u, v})
			}
			// Spot-check connectivity.
			a, b := r.Uint32n(n), r.Uint32n(n)
			if x.Connected(a, b) != o.connected(a, b) {
				return false
			}
		}
		if x.ComponentCount() != o.components() {
			return false
		}
		return x.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorldChurn(t *testing.T) {
	p := rmat.PaperParams(10, 5*(1<<10), 100, 3)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumVertices()
	x := New(n, dyngraph.NewHybrid(n, 4*len(edges), 0, 9))
	for _, e := range edges {
		x.InsertEdge(e.U, e.V, e.T)
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete a random third; forest must stay consistent.
	r := xrand.New(4)
	deleted := 0
	for _, e := range edges {
		if r.Float64() < 0.33 && x.DeleteEdge(e.U, e.V) {
			deleted++
		}
	}
	if deleted == 0 {
		t.Fatal("no deletions exercised")
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Spot-check against store reachability via a fresh component count.
	if x.ComponentCount() <= 0 || x.ComponentCount() > n {
		t.Fatalf("component count %d out of range", x.ComponentCount())
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-empty store")
		}
	}()
	s := dyngraph.NewDynArr(4, 8)
	s.Insert(0, 1, 0)
	New(4, s)
}

func TestNewSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mis-sized store")
		}
	}()
	New(4, dyngraph.NewDynArr(8, 8))
}

func TestEdgeCountsHalved(t *testing.T) {
	x := New(4, nil)
	x.InsertEdge(0, 1, 1)
	x.InsertEdge(1, 2, 2)
	if x.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 undirected edges", x.NumEdges())
	}
	if x.NumVertices() != 4 {
		t.Fatalf("n = %d", x.NumVertices())
	}
}
