package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 100, 1001} {
			hits := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForBlockPartition(t *testing.T) {
	if err := quick.Check(func(w uint8, n uint16) bool {
		workers := int(w%16) + 1
		total := int64(0)
		var sum atomic.Int64
		ForBlock(workers, int(n), func(lo, hi int) {
			if lo > hi {
				t.Errorf("lo %d > hi %d", lo, hi)
			}
			sum.Add(int64(hi - lo))
		})
		total = sum.Load()
		return total == int64(n)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	for _, chunk := range []int{1, 3, 64, 1000} {
		n := 777
		hits := make([]int32, n)
		ForDynamic(4, n, chunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk=%d: index %d visited %d times", chunk, i, h)
			}
		}
	}
}

func TestForDynamicZeroAndNegative(t *testing.T) {
	called := false
	ForDynamic(4, 0, 16, func(lo, hi int) { called = true })
	ForDynamic(4, -5, 16, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestWorkersIDs(t *testing.T) {
	const w = 9
	seen := make([]int32, w)
	Workers(w, func(id int) { atomic.AddInt32(&seen[id], 1) })
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("worker id %d ran %d times", id, c)
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 8} {
		n := 10000
		got := Reduce(workers, n, 0,
			func(acc, i int) int { return acc + i },
			func(a, b int) int { return a + b })
		want := n * (n - 1) / 2
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(4, 0, 42, func(acc, i int) int { return 0 }, func(a, b int) int { return 0 })
	if got != 42 {
		t.Fatalf("empty reduce = %d, want zero value 42", got)
	}
}

func TestBlockIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for _, n := range []int{1, 2, 10, 97} {
			if workers > n {
				continue
			}
			// Recompute the block boundaries and verify BlockIndex agrees.
			q, r := n/workers, n%workers
			lo := 0
			for w := 0; w < workers; w++ {
				hi := lo + q
				if w < r {
					hi++
				}
				for i := lo; i < hi; i++ {
					if got := BlockIndex(workers, n, i); got != w {
						t.Fatalf("BlockIndex(%d,%d,%d) = %d, want %d", workers, n, i, got, w)
					}
				}
				lo = hi
			}
		}
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Fatal("MaxWorkers < 1")
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForBlock(0, 1024, func(lo, hi int) {})
	}
}
