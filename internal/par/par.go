// Package par provides the parallel-for primitives that every kernel in
// snapdyn is built on. They mirror the OpenMP "parallel for" structure the
// paper's C implementation uses: a bounded set of workers, static or
// chunked dynamic scheduling over an index range, and a barrier at the
// end.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers returns the default worker count: GOMAXPROCS.
func MaxWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// clampWorkers normalizes a requested worker count for a range of n items.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs body(i) for every i in [0, n) using static block scheduling
// across the given number of workers (<=0 means GOMAXPROCS). Each worker
// receives one contiguous block, matching OpenMP schedule(static).
func For(workers, n int, body func(i int)) {
	ForBlock(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlock partitions [0, n) into one contiguous block per worker and
// invokes body(lo, hi) for each block in its own goroutine. Blocks differ
// in size by at most one element.
func ForBlock(workers, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	q, r := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForDynamic runs body(lo, hi) over [0, n) in chunks of the given size,
// handed to workers from a shared atomic counter (OpenMP
// schedule(dynamic, chunk)). Use for loops with irregular per-iteration
// cost, e.g. frontier expansion over power-law degree vertices.
func ForDynamic(workers, n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	workers = clampWorkers(workers, (n+chunk-1)/chunk)
	if workers == 1 {
		body(0, n)
		return
	}
	// The fan-out lives in its own function so its escaping
	// synchronization state is not heap-allocated on the serial path
	// (escape analysis is not flow-sensitive): a workers==1 call must
	// stay allocation-free for steady-state traversal loops.
	forDynamic(workers, n, chunk, body)
}

func forDynamic(workers, n, chunk int, body func(lo, hi int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Workers launches exactly `workers` goroutines, passing each its id in
// [0, workers), and waits for all of them. It is the SPMD region
// primitive: the body typically cooperates through shared arrays indexed
// by worker id.
func Workers(workers int, body func(id int)) {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if workers == 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			body(id)
		}(w)
	}
	wg.Wait()
}

// Reduce computes a parallel reduction over [0, n): each worker folds its
// block with fold starting from zero, and the per-worker partials are
// combined left-to-right with combine. combine must be associative.
func Reduce[T any](workers, n int, zero T, fold func(acc T, i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = fold(acc, i)
		}
		return combine(zero, acc)
	}
	partial := make([]T, workers)
	ForBlock(workers, n, func(lo, hi int) {
		// Recover the worker index from the block: blocks are assigned in
		// order, sized q or q+1.
		w := BlockIndex(workers, n, lo)
		acc := zero
		for i := lo; i < hi; i++ {
			acc = fold(acc, i)
		}
		partial[w] = acc
	})
	acc := zero
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// BlockIndex returns the worker index owning offset lo under ForBlock's
// partitioning of n items among workers — the inversion kernels use to
// map a block start to a per-worker buffer. It is only meaningful when
// ForBlock did not clamp the worker count (n >= workers); callers with
// possibly-smaller ranges must fall back to a serial path. Any change
// to ForBlock's split must be mirrored here.
func BlockIndex(workers, n, lo int) int {
	q, r := n/workers, n%workers
	big := r * (q + 1) // total items in the first r (larger) blocks
	if lo < big {
		return lo / (q + 1)
	}
	if q == 0 {
		return workers - 1
	}
	return r + (lo-big)/q
}
