// Package durable assembles the crash-safe ingest path: a group-commit
// batcher (internal/batcher) in front of a write-ahead log
// (internal/wal) in front of the gated snapshot manager
// (internal/snapmgr). One Store owns one log directory and one tracked
// store; a sharded deployment runs one Store per shard
// (internal/shard.OpenDurable).
//
// The durability contract, end to end:
//
//   - A submission's Ack resolves only after its containing batch has
//     been framed, written, and fsynced to the WAL *and* applied to the
//     live store. The ack carries the snapshot epoch that is guaranteed
//     to contain the batch: wait for Manager().WaitEpoch(ack epoch) and
//     every query after that observes the writes (read-your-writes).
//   - After a crash at any point — mid-record, mid-fsync, mid-checkpoint
//     — Open rebuilds exactly a prefix of the committed update sequence
//     that includes every acknowledged batch. Unacknowledged batches at
//     the crash horizon may or may not survive (they were in flight);
//     nothing else can differ.
//   - Epochs stay monotone across restarts: Open re-bases the new
//     manager's epoch counter above anything a pre-crash client can
//     hold, so a stale ack epoch never falsely reads as published.
//
// Checkpoints bound replay: every CheckpointEvery committed updates the
// flusher dumps the live graph through internal/graphio into the log
// directory and prunes the segments it covers. Checkpointing is an
// optimization, never a correctness requirement — a failed checkpoint
// only means longer replay.
package durable

import (
	"fmt"
	"time"

	"snapdyn/internal/batcher"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/wal"
)

// Config configures a durable store. Dir is required; the rest defaults.
type Config struct {
	// Dir is the WAL + checkpoint directory, created if missing.
	Dir string
	// CheckpointEvery cuts a checkpoint after this many committed
	// updates (0 disables periodic checkpoints; a final one is still
	// written on clean Close).
	CheckpointEvery uint64
	// Batch tunes the group-commit batcher.
	Batch batcher.Config
	// WAL tunes segment rotation and carries the fault-injection file
	// hooks in tests.
	WAL wal.Options
	// Hook, when non-nil, is called at commit-path stages
	// ("pre-append", "post-append", "post-apply") so crash tests can
	// kill the fault model at exactly the awkward moments.
	Hook func(stage string)
}

// Info describes what Open restored, for logs and the bench harness.
type Info struct {
	// Recovered reports that a previous life's state was found (a
	// checkpoint, replayable records, or both).
	Recovered bool
	// LSN is the update count restored; the store reflects exactly the
	// first LSN committed updates of the previous life.
	LSN uint64
	// CheckpointLSN is the coverage of the checkpoint used (0 if none);
	// ReplayedBatches/ReplayedUpdates count the log tail replayed on
	// top of it.
	CheckpointLSN   uint64
	ReplayedBatches int
	ReplayedUpdates int
	// Torn reports that a partially persisted final record was found
	// and truncated — the expected crash shape.
	Torn bool
	// Elapsed is the wall-clock recovery time: log scan, replay, and
	// initial materialization.
	Elapsed time.Duration
}

// Store is the durable ingest facade over one tracked store.
type Store struct {
	n       int
	workers int
	mgr     *snapmgr.Manager
	log     *wal.Log
	bat     *batcher.Batcher
	hook    func(string)

	ckptEvery uint64
	sinceCkpt uint64 // flusher-goroutine only
}

// Open recovers (or initializes) the log directory, rebuilds the store,
// and starts the group-commit batcher. newStore builds the backing
// representation over n vertices (nil means the hybrid default);
// bootstrap seeds a *fresh* directory with initial insertions, applied
// and then protected by a seed checkpoint — on a recovered directory it
// is ignored (the durable state wins).
func Open(n, workers int, newStore func(n int) dyngraph.Store, bootstrap []edge.Update, cfg Config) (*Store, *Info, error) {
	start := time.Now()
	log, rec, err := wal.Create(cfg.Dir, cfg.WAL)
	if err != nil {
		return nil, nil, err
	}
	if rec.Checkpoint != nil && rec.Checkpoint.N != n {
		log.Close()
		return nil, nil, fmt.Errorf("durable: checkpoint in %s covers %d vertices, store has %d",
			cfg.Dir, rec.Checkpoint.N, n)
	}
	if newStore == nil {
		newStore = func(n int) dyngraph.Store { return dyngraph.NewHybrid(n, 8*n, 0, 1) }
	}
	st := dyngraph.NewTracked(newStore(n))

	recovered := rec.Checkpoint != nil || rec.LSN > 0
	if rec.Checkpoint != nil {
		dyngraph.InsertAll(st, workers, rec.Checkpoint.Edges)
	}
	for _, b := range rec.Batches {
		// Replay batch-by-batch in commit order: ApplyBatch preserves
		// per-vertex order within a batch, so the rebuilt multiset
		// matches the original application exactly.
		st.ApplyBatch(workers, b)
	}
	if !recovered && len(bootstrap) > 0 {
		st.ApplyBatch(workers, bootstrap)
	}

	mgr := snapmgr.New(workers, st)
	if recovered {
		// Re-base epochs above anything a pre-crash client can hold: a
		// batch's ack epoch is at most the checkpoint's epoch plus one
		// per replayed batch; +1 absorbs the publication race at the
		// checkpoint cut. Overshooting only skips epoch numbers.
		var ckptEpoch uint64
		if rec.Checkpoint != nil {
			ckptEpoch = rec.Checkpoint.Epoch
		}
		mgr.SetEpochBase(ckptEpoch + uint64(len(rec.Batches)) + 1)
	}

	d := &Store{
		n:         n,
		workers:   workers,
		mgr:       mgr,
		log:       log,
		hook:      cfg.Hook,
		ckptEvery: cfg.CheckpointEvery,
	}
	if d.hook == nil {
		d.hook = func(string) {}
	}
	if !recovered && len(bootstrap) > 0 {
		// Seed checkpoint: the bootstrap graph never went through the
		// WAL, so it must be durable before any ack is issued on top.
		if err := d.checkpoint(); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("durable: seeding checkpoint: %w", err)
		}
	}
	d.bat = batcher.New(cfg.Batch, d.commit)

	return d, &Info{
		Recovered:       recovered,
		LSN:             rec.LSN,
		CheckpointLSN:   rec.CheckpointLSN(),
		ReplayedBatches: len(rec.Batches),
		ReplayedUpdates: rec.Updates(),
		Torn:            rec.Torn,
		Elapsed:         time.Since(start),
	}, nil
}

// Manager returns the snapshot manager over the recovered store, for
// query serving, auto-refresh policy, and epoch waits.
func (d *Store) Manager() *snapmgr.Manager { return d.mgr }

// Log returns the write-ahead log, for metrics.
func (d *Store) Log() *wal.Log { return d.log }

// Batcher returns the group-commit batcher, for metrics.
func (d *Store) Batcher() *batcher.Batcher { return d.bat }

// Submit queues updates for the next group commit, blocking when the
// pending queue is full. The Ack resolves once the batch is fsynced
// and applied, carrying the epoch that will contain it.
func (d *Store) Submit(updates []edge.Update) (*batcher.Ack, error) {
	return d.bat.Submit(updates)
}

// TrySubmit is Submit shedding with batcher.ErrFull instead of
// blocking.
func (d *Store) TrySubmit(updates []edge.Update) (*batcher.Ack, error) {
	return d.bat.TrySubmit(updates)
}

// Ingest submits and waits: the synchronous durable ingest call,
// returning the ack epoch. It returns only after the updates are on
// disk and applied.
func (d *Store) Ingest(updates []edge.Update) (uint64, error) {
	a, err := d.Submit(updates)
	if err != nil {
		return 0, err
	}
	return a.Epoch(), a.Err()
}

// commit is the batcher's CommitFunc: WAL first, then the gated apply,
// in that order — an ack therefore implies both. It runs serially on
// the flusher goroutine.
func (d *Store) commit(batch []edge.Update) (uint64, error) {
	d.hook("pre-append")
	if _, err := d.log.Append(batch); err != nil {
		return 0, err
	}
	d.hook("post-append")
	epoch := d.mgr.IngestEpoch(func(t *dyngraph.Tracked) { t.ApplyBatch(d.workers, batch) })
	d.hook("post-apply")
	d.sinceCkpt += uint64(len(batch))
	if d.ckptEvery > 0 && d.sinceCkpt >= d.ckptEvery {
		// Best-effort: a failed checkpoint is counted in the log's
		// metrics and retried after the next CheckpointEvery updates;
		// the WAL still covers everything.
		d.checkpoint()
		d.sinceCkpt = 0
	}
	return epoch, nil
}

// checkpoint dumps the live graph and installs it as a checkpoint at
// the log's current LSN. Called from the flusher (or before/after its
// lifetime), so no apply runs concurrently and the dump is exact.
func (d *Store) checkpoint() error {
	return d.log.Checkpoint(Dump(d.mgr.Store()), d.mgr.Epoch()+1, d.n)
}

// Close flushes the batcher (resolving every outstanding ack), stops
// the auto-refresher if one is running, writes a final checkpoint for
// fast restart, and closes the log. The first error from the log is
// returned; a failed final checkpoint is not an error (the WAL covers
// the state).
func (d *Store) Close() error {
	if d.bat != nil {
		d.bat.Stop()
	}
	d.mgr.Stop()
	d.checkpoint() // best-effort
	return d.log.Close()
}

// Dump enumerates every live arc of a store — the checkpoint payload.
// The caller must ensure no mutations run concurrently.
func Dump(s dyngraph.Store) []edge.Edge {
	out := make([]edge.Edge, 0, s.NumEdges())
	n := s.NumVertices()
	for u := 0; u < n; u++ {
		s.Neighbors(edge.ID(u), func(v edge.ID, t uint32) bool {
			out = append(out, edge.Edge{U: uint32(u), V: v, T: t})
			return true
		})
	}
	return out
}
