package durable

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"snapdyn/internal/batcher"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/wal"
)

const testN = 64

// randUpdates builds a random mixed insert/delete batch over testN
// vertices; small T range so deletes sometimes hit existing tuples.
func randUpdates(rng *rand.Rand, n int) []edge.Update {
	out := make([]edge.Update, n)
	for i := range out {
		op := edge.Insert
		if rng.Intn(4) == 0 {
			op = edge.Delete
		}
		out[i] = edge.Update{Op: op, Edge: edge.Edge{
			U: uint32(rng.Intn(testN)),
			V: uint32(rng.Intn(testN)),
			T: uint32(rng.Intn(4)),
		}}
	}
	return out
}

// replayOracle applies the same update prefix to a fresh store of the
// same type and returns its sorted arc multiset — the never-crashed
// reference. Store state depends only on the per-vertex op sequence,
// so batch grouping is irrelevant.
func replayOracle(t *testing.T, batches ...[]edge.Update) []edge.Edge {
	t.Helper()
	st := dyngraph.NewTracked(dyngraph.NewHybrid(testN, 8*testN, 0, 1))
	for _, b := range batches {
		st.ApplyBatch(2, b)
	}
	return sortedDump(st)
}

func sortedDump(s dyngraph.Store) []edge.Edge {
	out := Dump(s)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.T < b.T
	})
	return out
}

func sameArcs(t *testing.T, got, want []edge.Edge, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d arcs, want %d", msg, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: arc %d: %v != %v", msg, i, got[i], want[i])
		}
	}
}

func TestBootstrapCleanRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	boot := randUpdates(rng, 100)
	cfg := Config{Dir: dir, Batch: batcher.Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond}}

	d, info, err := Open(testN, 2, nil, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh directory reported recovered")
	}
	b1 := randUpdates(rng, 40)
	e1, err := d.Ingest(b1)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == 0 {
		t.Fatal("zero ack epoch")
	}
	want := replayOracle(t, boot, b1)
	sameArcs(t, sortedDump(d.Manager().Store()), want, "pre-close")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean restart: the final checkpoint carries everything.
	d2, info2, err := Open(testN, 2, nil, boot, cfg) // bootstrap must be ignored
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !info2.Recovered {
		t.Fatal("restart did not recover")
	}
	sameArcs(t, sortedDump(d2.Manager().Store()), want, "post-restart")
	// Epochs stay monotone across the restart.
	e2, err := d2.Ingest(randUpdates(rng, 10))
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("post-restart ack epoch %d not above pre-restart %d", e2, e1)
	}
}

func TestReadYourWrites(t *testing.T) {
	d, _, err := Open(testN, 2, nil, nil, Config{
		Dir:   t.TempDir(),
		Batch: batcher.Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mgr := d.Manager()
	if !mgr.Start(snapmgr.Policy{MaxDirty: 1, Poll: time.Millisecond, Workers: 2}) {
		t.Fatal("refresher did not start")
	}

	a, err := d.Submit([]edge.Update{{Op: edge.Insert, Edge: edge.Edge{U: 7, V: 9, T: 42}}})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := a.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.WaitEpoch(epoch, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	adj, ts := mgr.Current().Neighbors(7)
	for i, v := range adj {
		if v == 9 && ts[i] == 42 {
			return
		}
	}
	t.Fatal("acked arc not visible at the ack epoch: read-your-writes broken")
}

func TestVertexCountMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	d, _, err := Open(testN, 2, nil, randUpdates(rand.New(rand.NewSource(2)), 20), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, _, err := Open(testN*2, 2, nil, nil, Config{Dir: dir}); err == nil {
		t.Fatal("vertex-count mismatch against the checkpoint was accepted")
	}
}

func TestDiskFullPropagatesToIngest(t *testing.T) {
	fd := wal.NewFaultDir(3)
	d, _, err := Open(testN, 2, nil, nil, Config{
		Dir:   t.TempDir(),
		Batch: batcher.Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond},
		WAL:   wal.Options{OpenFile: fd.OpenFile, Rename: fd.Rename},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Ingest(randUpdates(rand.New(rand.NewSource(3)), 8)); err != nil {
		t.Fatalf("pre-fault ingest: %v", err)
	}
	fd.WriteBudget = 0 // no more bytes: disk full
	if _, err := d.Ingest(randUpdates(rand.New(rand.NewSource(4)), 8)); err == nil {
		t.Fatal("disk-full commit acked")
	}
}

// TestCrashRecoverRandomized is the headline kill-and-recover
// property: a single-goroutine submission stream, a crash at a random
// moment (concurrent with in-flight group commits, so it can tear a
// WAL record or a mid-flight checkpoint), then recovery must rebuild a
// prefix of the stream that contains every acknowledged batch,
// arc-for-arc identical to the never-crashed oracle over that prefix,
// with epochs staying monotone into the next life.
func TestCrashRecoverRandomized(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			fd := wal.NewFaultDir(seed)
			fd.WriteDelay = time.Duration(rng.Intn(200)) * time.Microsecond
			ckptEvery := []uint64{0, 64, 256}[rng.Intn(3)]
			cfg := Config{
				Dir:             dir,
				CheckpointEvery: ckptEvery,
				Batch:           batcher.Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond},
				WAL: wal.Options{
					SegmentBytes: int64(1024 + rng.Intn(4096)),
					OpenFile:     fd.OpenFile,
					Rename:       fd.Rename,
				},
			}
			var boot []edge.Update
			if rng.Intn(2) == 0 {
				boot = randUpdates(rng, 50)
			}
			d, _, err := Open(testN, 2, nil, boot, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				d.Manager().Start(snapmgr.Policy{MaxDirty: 8, Poll: time.Millisecond, Workers: 2})
			}

			// Crash at a random point while the stream is in flight.
			crashAfter := time.Duration(rng.Intn(4000)) * time.Microsecond
			crashTimer := time.AfterFunc(crashAfter, fd.Crash)

			var stream [][]edge.Update
			var acks []*batcher.Ack
			for i := 0; i < 60; i++ {
				b := randUpdates(rng, 1+rng.Intn(12))
				a, err := d.Submit(b)
				if err != nil {
					break // stopped/failed mid-stream: acks so far still resolve
				}
				stream = append(stream, b)
				acks = append(acks, a)
			}
			crashTimer.Stop()
			fd.Crash() // crash for sure, possibly mid-commit
			d.Close()  // resolves every outstanding ack
			if !fd.Crashed() {
				t.Fatal("fault dir not crashed")
			}

			// Acked batches must form a prefix (commits are ordered and
			// the WAL fails sticky).
			ackedBatches := 0
			var maxAckEpoch uint64
			for i, a := range acks {
				if err := a.Err(); err == nil {
					if i != ackedBatches {
						t.Fatalf("ack %d ok after ack %d failed — acks not a prefix", i, ackedBatches)
					}
					ackedBatches++
					if e := a.Epoch(); e > maxAckEpoch {
						maxAckEpoch = e
					}
				}
			}
			var ackedUpdates uint64
			for _, b := range stream[:ackedBatches] {
				ackedUpdates += uint64(len(b))
			}

			// Recover with a clean filesystem.
			clean := cfg
			clean.WAL = wal.Options{SegmentBytes: cfg.WAL.SegmentBytes}
			d2, info, err := Open(testN, 2, nil, nil, clean)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer d2.Close()
			if !info.Recovered && (len(boot) > 0 || ackedUpdates > 0) {
				t.Fatalf("durable state existed but recovery found nothing: %+v", info)
			}
			if info.LSN < ackedUpdates {
				t.Fatalf("recovered LSN %d < acked updates %d — lost acknowledged data", info.LSN, ackedUpdates)
			}

			// The recovered graph must equal the oracle over exactly the
			// first LSN updates of the stream (plus bootstrap).
			var prefix [][]edge.Update
			if len(boot) > 0 {
				prefix = append(prefix, boot)
			}
			remain := info.LSN
			for _, b := range stream {
				if remain == 0 {
					break
				}
				if uint64(len(b)) > remain {
					t.Fatalf("recovered LSN %d splits a batch of %d — commits are atomic", info.LSN, len(b))
				}
				prefix = append(prefix, b)
				remain -= uint64(len(b))
			}
			if remain != 0 {
				t.Fatalf("recovered LSN %d exceeds submitted stream", info.LSN)
			}
			sameArcs(t, sortedDump(d2.Manager().Store()), replayOracle(t, prefix...),
				"recovered graph vs oracle")

			// The new life keeps serving and its ack epochs sit above
			// every pre-crash ack.
			e2, err := d2.Ingest(randUpdates(rng, 5))
			if err != nil {
				t.Fatalf("post-recovery ingest: %v", err)
			}
			if e2 <= maxAckEpoch {
				t.Fatalf("post-recovery ack epoch %d not above pre-crash max %d", e2, maxAckEpoch)
			}
		})
	}
}

// TestCrashAtCommitStages pins the crash to each commit-path stage via
// the hook, covering the deterministic corners the randomized sweep
// may miss.
func TestCrashAtCommitStages(t *testing.T) {
	for _, stage := range []string{"pre-append", "post-append", "post-apply"} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			fd := wal.NewFaultDir(11)
			rng := rand.New(rand.NewSource(11))
			b1, b2 := randUpdates(rng, 20), randUpdates(rng, 20)

			crashed := false
			d, _, err := Open(testN, 2, nil, nil, Config{
				Dir:   dir,
				Batch: batcher.Config{MaxBatch: 1 << 20, MaxDelay: 50 * time.Microsecond},
				WAL:   wal.Options{OpenFile: fd.OpenFile, Rename: fd.Rename},
				Hook: func(s string) {
					if s == stage && crashed {
						fd.Crash()
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Ingest(b1); err != nil {
				t.Fatal(err)
			}
			crashed = true
			_, err = d.Ingest(b2)
			d.Close()

			wantB2 := stage != "pre-append" // append completed (and synced) before the crash
			if wantB2 && err != nil {
				t.Fatalf("stage %s: batch was durable but ack failed: %v", stage, err)
			}
			if !wantB2 && err == nil {
				t.Fatalf("stage %s: batch was not durable but ack succeeded", stage)
			}

			d2, info, err := Open(testN, 2, nil, nil, Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			want := replayOracle(t, b1)
			wantLSN := uint64(len(b1))
			if wantB2 {
				want = replayOracle(t, b1, b2)
				wantLSN += uint64(len(b2))
			}
			if info.LSN != wantLSN {
				t.Fatalf("stage %s: recovered LSN %d, want %d", stage, info.LSN, wantLSN)
			}
			sameArcs(t, sortedDump(d2.Manager().Store()), want, "stage "+stage)
		})
	}
}

// TestCrashDuringCheckpoint kills the model between checkpoint write
// and install: the durable state must still recover from the previous
// checkpoint + full log tail.
func TestCrashDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fd := wal.NewFaultDir(13)
	rng := rand.New(rand.NewSource(13))
	armed := false
	d, _, err := Open(testN, 2, nil, nil, Config{
		Dir:             dir,
		CheckpointEvery: 16,
		Batch:           batcher.Config{MaxBatch: 1 << 20, MaxDelay: 50 * time.Microsecond},
		WAL: wal.Options{
			OpenFile: fd.OpenFile,
			Rename:   fd.Rename,
			Hook: func(p string) {
				if p == "ckpt-written" && armed {
					fd.Crash()
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b1 := randUpdates(rng, 10)
	if _, err := d.Ingest(b1); err != nil {
		t.Fatal(err)
	}
	armed = true
	b2 := randUpdates(rng, 10) // pushes past CheckpointEvery: triggers the doomed checkpoint
	if _, err := d.Ingest(b2); err != nil {
		t.Fatal(err) // commit itself succeeded; only the checkpoint died
	}
	d.Close()

	d2, info, err := Open(testN, 2, nil, nil, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.LSN != 20 {
		t.Fatalf("recovered LSN %d, want 20", info.LSN)
	}
	sameArcs(t, sortedDump(d2.Manager().Store()), replayOracle(t, b1, b2), "post-checkpoint-crash")
}
