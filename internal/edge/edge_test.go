package edge

import "testing"

func TestMaxVertex(t *testing.T) {
	if got := MaxVertex(nil); got != 0 {
		t.Fatalf("MaxVertex(nil) = %d, want 0", got)
	}
	edges := []Edge{{U: 3, V: 9}, {U: 0, V: 1}, {U: 7, V: 2}}
	if got := MaxVertex(edges); got != 10 {
		t.Fatalf("MaxVertex = %d, want 10", got)
	}
	if got := MaxVertex([]Edge{{U: 0, V: 0}}); got != 1 {
		t.Fatalf("MaxVertex single self-loop = %d, want 1", got)
	}
}

func TestStringForms(t *testing.T) {
	e := Edge{U: 1, V: 2, T: 3}
	if e.String() != "(1->2 @3)" {
		t.Fatalf("Edge.String = %q", e.String())
	}
	u := Update{Edge: e, Op: Insert}
	if u.String() != "ins(1->2 @3)" {
		t.Fatalf("Update.String = %q", u.String())
	}
	if Delete.String() != "del" {
		t.Fatalf("Delete.String = %q", Delete.String())
	}
	if Op(9).String() != "op(9)" {
		t.Fatalf("unknown op string = %q", Op(9).String())
	}
}
