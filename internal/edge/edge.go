// Package edge defines the compact edge and update-tuple types shared by
// every snapdyn package. A vertex id is a uint32 (the paper's compact
// representations target entity counts in the billions on big shared
// memory machines; locally we cap at 2^32-1 ids, which is far beyond what
// fits in RAM anyway), and a time-stamp is a uint32 time label in the
// sense of Kempe et al.: an abstract non-negative integer whose meaning is
// application-defined.
package edge

import "fmt"

// ID is a vertex identifier.
type ID = uint32

// NoTime marks an edge without temporal information.
const NoTime uint32 = 0

// Edge is a directed arc u -> v with time label T. Undirected graphs are
// represented by storing both arcs.
type Edge struct {
	U, V ID
	T    uint32 // time label λ(e)
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("(%d->%d @%d)", e.U, e.V, e.T) }

// Op distinguishes structural update kinds in a stream.
type Op uint8

const (
	// Insert adds the edge to the graph.
	Insert Op = iota
	// Delete removes the edge (matched by endpoints; the time label of a
	// delete records when the deletion happened).
	Delete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Insert:
		return "ins"
	case Delete:
		return "del"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Update is one element of a structural update stream.
type Update struct {
	Edge
	Op Op
}

// String implements fmt.Stringer.
func (u Update) String() string { return fmt.Sprintf("%s%s", u.Op, u.Edge) }

// MaxVertex returns 1 + the largest endpoint id in edges, i.e. the minimal
// vertex-array size holding all endpoints, or 0 for an empty slice.
func MaxVertex(edges []Edge) int {
	var m ID
	seen := false
	for _, e := range edges {
		seen = true
		if e.U > m {
			m = e.U
		}
		if e.V > m {
			m = e.V
		}
	}
	if !seen {
		return 0
	}
	return int(m) + 1
}
