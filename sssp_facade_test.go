package snapdyn

import "testing"

func TestShortestPathsFacade(t *testing.T) {
	g := New(4, Undirected())
	g.InsertEdge(0, 1, 5)
	g.InsertEdge(1, 2, 7)
	g.InsertEdge(0, 2, 20)
	snap := g.Snapshot(0)
	dist := snap.ShortestPaths(0, 0, 0)
	if dist[0] != 0 || dist[1] != 5 || dist[2] != 12 {
		t.Fatalf("distances = %v", dist[:3])
	}
	if dist[3] != InfDistance {
		t.Fatalf("unreachable dist = %d", dist[3])
	}
}

func TestHopDistancesMatchBFS(t *testing.T) {
	_, snap := buildSmall(t)
	src := snap.SampleSources(1, 3)[0]
	hops := snap.HopDistances(0, src)
	res := snap.BFS(0, src)
	for v := range hops {
		want := int64(res.Level[v])
		if res.Level[v] == NotVisited {
			want = InfDistance
		}
		if hops[v] != want {
			t.Fatalf("hops[%d] = %d, BFS level %d", v, hops[v], res.Level[v])
		}
	}
}

func TestTemporalReachabilityFacade(t *testing.T) {
	g := New(3)
	g.InsertEdge(0, 1, 10)
	g.InsertEdge(1, 2, 5) // decreasing: blocks the chain
	snap := g.Snapshot(0)
	arrive, reached := snap.TemporalReachability(0)
	if reached != 2 {
		t.Fatalf("reached %d, want 2", reached)
	}
	if arrive[1] != 10 {
		t.Fatalf("arrive[1] = %d", arrive[1])
	}
	if snap.TemporallyReachable(0, 2) || !snap.TemporallyReachable(0, 1) {
		t.Fatal("reachability predicates wrong")
	}
	// Temporal betweenness of the middle must be 0 in this graph, since
	// no temporal path crosses it.
	bc := snap.Betweenness(0, BCOptions{Temporal: true})
	if bc[1] != 0 {
		t.Fatalf("bc[1] = %v", bc[1])
	}
}

func TestSTConnectedFastMatches(t *testing.T) {
	_, snap := buildSmall(t)
	srcs := snap.SampleSources(12, 4)
	for _, u := range srcs {
		for _, v := range srcs {
			wantOK, wantD := snap.STConnected(0, u, v)
			gotOK, gotD := snap.STConnectedFast(u, v)
			if wantOK != gotOK || (wantOK && wantD != gotD) {
				t.Fatalf("(%d,%d): fast (%v,%d) vs bfs (%v,%d)", u, v, gotOK, gotD, wantOK, wantD)
			}
		}
	}
}

// TestSSSPWithMatchesDijkstraTemporal checks delta-stepping against the
// Dijkstra baseline on a snapshot of the dynamic store — the temporal
// LabelWeights path, where each arc's time label is its weight — across
// sources, worker counts, and a shared warm scratch.
func TestSSSPWithMatchesDijkstraTemporal(t *testing.T) {
	_, snap := buildSmall(t)
	scratch := NewSSSPScratch()
	for _, src := range snap.SampleSources(3, 9) {
		want := snap.ShortestPathsDijkstra(src)
		for _, workers := range []int{1, 4} {
			got := snap.SSSPWith(src, SSSPOptions{Workers: workers, Scratch: scratch})
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("workers=%d src=%d: dist[%d] = %d, want %d",
						workers, src, v, got[v], want[v])
				}
			}
		}
	}
}

// TestSSSPWithExplicitDelta checks that a caller-chosen bucket width
// still matches the baseline, including a width change over one warm
// scratch (which must rebuild the cached partitioned view).
func TestSSSPWithExplicitDelta(t *testing.T) {
	_, snap := buildSmall(t)
	src := snap.SampleSources(1, 5)[0]
	want := snap.ShortestPathsDijkstra(src)
	scratch := NewSSSPScratch()
	for _, delta := range []int64{1, 40, 1 << 20} {
		got := snap.SSSPWith(src, SSSPOptions{Delta: delta, Scratch: scratch})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("delta=%d: dist[%d] = %d, want %d", delta, v, got[v], want[v])
			}
		}
	}
}
