package snapdyn

import "testing"

func TestShortestPathsFacade(t *testing.T) {
	g := New(4, Undirected())
	g.InsertEdge(0, 1, 5)
	g.InsertEdge(1, 2, 7)
	g.InsertEdge(0, 2, 20)
	snap := g.Snapshot(0)
	dist := snap.ShortestPaths(0, 0, 0)
	if dist[0] != 0 || dist[1] != 5 || dist[2] != 12 {
		t.Fatalf("distances = %v", dist[:3])
	}
	if dist[3] != InfDistance {
		t.Fatalf("unreachable dist = %d", dist[3])
	}
}

func TestHopDistancesMatchBFS(t *testing.T) {
	_, snap := buildSmall(t)
	src := snap.SampleSources(1, 3)[0]
	hops := snap.HopDistances(0, src)
	res := snap.BFS(0, src)
	for v := range hops {
		want := int64(res.Level[v])
		if res.Level[v] == NotVisited {
			want = InfDistance
		}
		if hops[v] != want {
			t.Fatalf("hops[%d] = %d, BFS level %d", v, hops[v], res.Level[v])
		}
	}
}

func TestTemporalReachabilityFacade(t *testing.T) {
	g := New(3)
	g.InsertEdge(0, 1, 10)
	g.InsertEdge(1, 2, 5) // decreasing: blocks the chain
	snap := g.Snapshot(0)
	arrive, reached := snap.TemporalReachability(0)
	if reached != 2 {
		t.Fatalf("reached %d, want 2", reached)
	}
	if arrive[1] != 10 {
		t.Fatalf("arrive[1] = %d", arrive[1])
	}
	if snap.TemporallyReachable(0, 2) || !snap.TemporallyReachable(0, 1) {
		t.Fatal("reachability predicates wrong")
	}
	// Temporal betweenness of the middle must be 0 in this graph, since
	// no temporal path crosses it.
	bc := snap.Betweenness(0, BCOptions{Temporal: true})
	if bc[1] != 0 {
		t.Fatalf("bc[1] = %v", bc[1])
	}
}

func TestSTConnectedFastMatches(t *testing.T) {
	_, snap := buildSmall(t)
	srcs := snap.SampleSources(12, 4)
	for _, u := range srcs {
		for _, v := range srcs {
			wantOK, wantD := snap.STConnected(0, u, v)
			gotOK, gotD := snap.STConnectedFast(u, v)
			if wantOK != gotOK || (wantOK && wantD != gotD) {
				t.Fatalf("(%d,%d): fast (%v,%d) vs bfs (%v,%d)", u, v, gotOK, gotD, wantOK, wantD)
			}
		}
	}
}
