package snapdyn

import (
	"sort"
	"testing"
)

// layoutManagers builds one graph per storage layout over identical
// R-MAT data and returns the managers, plain first.
func layoutManagers(t *testing.T, scale int, seed uint64) ([]SnapshotLayout, []*SnapshotManager) {
	t.Helper()
	p := PaperRMAT(scale, 8*(1<<scale), 50, seed)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		t.Fatal(err)
	}
	layouts := []SnapshotLayout{
		SnapshotPlain, SnapshotDegree, SnapshotBFS, SnapshotRCM, SnapshotCompressed,
	}
	mgrs := make([]*SnapshotManager, len(layouts))
	for i, l := range layouts {
		g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
		g.InsertEdges(0, edges)
		mgrs[i] = g.ManagerWithLayout(0, l)
	}
	return layouts, mgrs
}

// sortedArcs returns u's (neighbor, ts) pairs in a canonical order, so
// snapshots whose per-vertex arc order differs (compressed views sort
// their adjacency) still compare equal as multisets.
func sortedArcs(s *Snapshot, u VertexID) [][2]uint32 {
	adj, ts := s.Neighbors(u)
	arcs := make([][2]uint32, len(adj))
	for i := range adj {
		arcs[i] = [2]uint32{adj[i], ts[i]}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i][0] != arcs[j][0] {
			return arcs[i][0] < arcs[j][0]
		}
		return arcs[i][1] < arcs[j][1]
	})
	return arcs
}

// checkLayoutEquivalence asserts that every facade query on got matches
// the plain snapshot want bit-for-bit in original vertex ids.
func checkLayoutEquivalence(t *testing.T, round int, l SnapshotLayout, want, got *Snapshot) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("round %d %v: shape (%d, %d), want (%d, %d)", round, l,
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	n := want.NumVertices()
	for u := 0; u < n; u++ {
		if gd, wd := got.OutDegree(VertexID(u)), want.OutDegree(VertexID(u)); gd != wd {
			t.Fatalf("round %d %v: OutDegree(%d) = %d, want %d", round, l, u, gd, wd)
		}
	}
	for _, u := range []VertexID{0, 1, 7, VertexID(n / 2), VertexID(n - 1)} {
		ga, wa := sortedArcs(got, u), sortedArcs(want, u)
		if len(ga) != len(wa) {
			t.Fatalf("round %d %v: Neighbors(%d) has %d arcs, want %d", round, l, u, len(ga), len(wa))
		}
		for i := range ga {
			if ga[i] != wa[i] {
				t.Fatalf("round %d %v: Neighbors(%d)[%d] = %v, want %v", round, l, u, i, ga[i], wa[i])
			}
		}
	}
	for _, src := range []VertexID{0, 3, VertexID(n - 5)} {
		gres, wres := got.BFS(2, src), want.BFS(2, src)
		if gres.Reached != wres.Reached {
			t.Fatalf("round %d %v: BFS(%d) reached %d, want %d", round, l, src, gres.Reached, wres.Reached)
		}
		for v := range wres.Level {
			if gres.Level[v] != wres.Level[v] {
				t.Fatalf("round %d %v: BFS(%d) Level[%d] = %d, want %d",
					round, l, src, v, gres.Level[v], wres.Level[v])
			}
		}
		gd, wd := got.ShortestPaths(2, src, 0), want.ShortestPaths(2, src, 0)
		for v := range wd {
			if gd[v] != wd[v] {
				t.Fatalf("round %d %v: SSSP(%d) dist[%d] = %d, want %d", round, l, src, v, gd[v], wd[v])
			}
		}
		gh, wh := got.HopDistances(2, src), want.HopDistances(2, src)
		for v := range wh {
			if gh[v] != wh[v] {
				t.Fatalf("round %d %v: HopDistances(%d)[%d] = %d, want %d", round, l, src, v, gh[v], wh[v])
			}
		}
	}
	gc, wc := got.Components(2), want.Components(2)
	for v := range wc {
		if gc[v] != wc[v] {
			t.Fatalf("round %d %v: Components[%d] = %d, want %d", round, l, v, gc[v], wc[v])
		}
	}
	for _, q := range [][2]VertexID{{0, 1}, {2, VertexID(n / 2)}, {5, VertexID(n - 1)}} {
		gok, ghops := got.STConnected(2, q[0], q[1])
		wok, whops := want.STConnected(2, q[0], q[1])
		if gok != wok || ghops != whops {
			t.Fatalf("round %d %v: STConnected%v = (%v, %d), want (%v, %d)",
				round, l, q, gok, ghops, wok, whops)
		}
	}
}

// TestFacadeLayoutsBitIdentical is the facade-level acceptance check for
// the storage layouts: every query on a reordered or compressed snapshot
// must be bit-identical to the plain one — in original vertex ids —
// including across incremental refreshes under churn (small rounds that
// splice deltas through the held permutation / compressed payload, and
// one large round that trips the permutation-staleness and full-rebuild
// fallbacks).
func TestFacadeLayoutsBitIdentical(t *testing.T) {
	const scale, seed = 9, 17
	layouts, mgrs := layoutManagers(t, scale, seed)
	check := func(round int) {
		t.Helper()
		want := mgrs[0].Current()
		for i := 1; i < len(mgrs); i++ {
			checkLayoutEquivalence(t, round, layouts[i], want, mgrs[i].Current())
		}
	}
	check(0)

	n := uint32(1 << scale)
	r := newTestRand(29)
	for round := 1; round <= 4; round++ {
		edits := 25
		if round == 3 {
			// Dirty well past 30% of the vertex set: the reordered
			// layouts must recompute their permutation and the delta
			// splicers fall back to full rebuilds.
			edits = 700
		}
		batch := make([]Update, 0, edits)
		for i := 0; i < edits; i++ {
			batch = append(batch, Update{
				Edge: Edge{U: r.next(n), V: r.next(n), T: r.next(50)},
				Op:   OpInsert,
			})
		}
		for _, sm := range mgrs {
			sm.ApplyUpdates(0, batch)
			sm.Refresh(0)
		}
		check(round)
	}
}

// TestManagerLayoutAccessors pins the layout metadata the facade
// exposes: the manager reports its configured layout, and a no-op
// refresh republishes the identical snapshot wrapper for every layout.
func TestManagerLayoutAccessors(t *testing.T) {
	layouts, mgrs := layoutManagers(t, 7, 3)
	for i, sm := range mgrs {
		if sm.Layout() != layouts[i] {
			t.Fatalf("Layout() = %v, want %v", sm.Layout(), layouts[i])
		}
		before := sm.Current()
		if after := sm.Refresh(0); after != before {
			t.Fatalf("%v: no-op Refresh republished a new snapshot wrapper", layouts[i])
		}
	}
}

// newTestRand is a tiny splitmix-style generator so the churn batches
// are deterministic without importing internal packages.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed} }

func (r *testRand) next(n uint32) uint32 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return uint32(z % uint64(n))
}
