package snapdyn

import (
	"sync"
	"sync/atomic"

	"snapdyn/internal/snapmgr"
)

// SnapshotManager versions immutable snapshots of one live graph so
// analysis can run concurrently with ingest. It is RCU-shaped:
//
//   - Readers call Current — one atomic pointer load, never blocking —
//     and query the returned Snapshot for as long as they like. A
//     snapshot already handed out stays valid while newer ones are
//     published; it is reclaimed by the garbage collector when the last
//     reader drops it. Readers never coordinate with writers.
//   - The ingest side applies updates to the Graph as usual and calls
//     Refresh whenever a fresher snapshot should be published. Refresh
//     consumes the graph's dirty-vertex set and rebuilds only the
//     adjacencies that changed since the previous snapshot, reusing all
//     clean spans (csr.Refresh); past a ~15% dirty fraction it falls
//     back to a full rebuild, which is cheaper at that point.
//
// Refresh calls serialize on an internal mutex and must not run
// concurrently with graph mutations (apply a batch, then refresh;
// readers keep querying throughout). Epoch and Staleness report the
// snapshot's version and lag.
type SnapshotManager struct {
	g *Graph
	m *snapmgr.Manager

	mu sync.Mutex // serializes publish of cur against concurrent Refresh
	// cur and epoch are published in that order, epoch last, so Epoch()
	// never runs ahead of the snapshot Current() returns.
	cur   atomic.Pointer[Snapshot]
	epoch atomic.Uint64
}

// Manager builds the initial snapshot with the given worker count and
// returns the graph's snapshot manager at epoch 1. Creating several
// managers for one graph is not useful: each Refresh consumes the
// graph's single dirty set.
func (g *Graph) Manager(workers int) *SnapshotManager {
	sm := &SnapshotManager{g: g, m: snapmgr.New(workers, g.store)}
	sm.cur.Store(&Snapshot{g: sm.m.Current(), undirected: g.undirected})
	sm.epoch.Store(sm.m.Epoch())
	return sm
}

// Current returns the latest published snapshot: one atomic load, safe
// from any goroutine at any time, including during a concurrent
// Refresh.
func (sm *SnapshotManager) Current() *Snapshot { return sm.cur.Load() }

// Epoch returns the number of materializations published so far. It is
// monotone, advances by exactly one per Refresh (even when nothing
// changed), and never runs ahead of the snapshot Current returns.
func (sm *SnapshotManager) Epoch() uint64 { return sm.epoch.Load() }

// Staleness returns the number of vertices dirtied since the last
// Refresh began consuming updates — the work the next Refresh will do.
// With no Refresh in flight, zero means Current is exact; while one is
// materializing, a zero refers to the snapshot about to be published
// (the in-flight Refresh has already claimed the dirty set).
func (sm *SnapshotManager) Staleness() int { return sm.m.Staleness() }

// Refresh materializes a snapshot covering every update applied so far
// and publishes it, returning the new current snapshot. Incremental:
// cost is proportional to the dirty-vertex set, not the graph (see the
// type comment for the fallback threshold). When no updates arrived
// since the last Refresh the previous snapshot is republished
// unchanged. Must not run concurrently with mutations of the graph;
// concurrent readers are unaffected.
func (sm *SnapshotManager) Refresh(workers int) *Snapshot {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	old := sm.cur.Load()
	g := sm.m.Refresh(workers)
	snap := old
	if old == nil || old.g != g {
		snap = &Snapshot{g: g, undirected: sm.g.undirected}
		sm.cur.Store(snap)
	}
	sm.epoch.Store(sm.m.Epoch())
	return snap
}
