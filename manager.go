package snapdyn

import (
	"sync/atomic"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
)

// SnapshotManager versions immutable snapshots of one live graph so
// analysis can run concurrently with ingest. It is RCU-shaped:
//
//   - Readers call Current — one atomic pointer load, never blocking —
//     and query the returned Snapshot for as long as they like. A
//     snapshot already handed out stays valid while newer ones are
//     published; it is reclaimed by the garbage collector when the last
//     reader drops it. Readers never coordinate with writers.
//   - The ingest side applies updates and calls Refresh whenever a
//     fresher snapshot should be published — or starts the background
//     auto-refresher (StartAutoRefresh) and lets policy decide. Refresh
//     consumes the graph's dirty-vertex set and rebuilds only the
//     adjacencies that changed since the previous snapshot, reusing all
//     clean spans (csr.Refresh); past a ~15% dirty fraction it falls
//     back to a full rebuild, which is cheaper at that point.
//
// Refresh calls serialize on an internal gate and must not run
// concurrently with graph mutations. Without the auto-refresher the
// usual pattern (apply a batch, then refresh) satisfies that by
// construction. With the auto-refresher running, route mutations
// through the manager's ingest methods (ApplyUpdates, InsertEdge,
// DeleteEdge) — they take the shared side of the same gate, so any
// number of ingesters proceed together while refreshes wait their
// turn. Readers keep querying throughout either way.
type SnapshotManager struct {
	g *Graph
	m *snapmgr.Manager

	// cur caches the facade wrapper for the internal manager's current
	// CSR graph. It is best-effort: Current always validates the cached
	// wrapper against m.Current() and re-wraps on mismatch, so a racing
	// stale store only costs one small allocation, never staleness.
	cur atomic.Pointer[Snapshot]
}

// SnapshotLayout selects the storage format the manager publishes its
// snapshots in; see the Snapshot* constants. Queries on any layout
// accept and report original vertex ids and return identical results —
// the layout only changes the snapshot's memory footprint and traversal
// locality.
type SnapshotLayout = snapmgr.Layout

const (
	// SnapshotPlain stores unpermuted CSR arrays (the default).
	SnapshotPlain = snapmgr.LayoutPlain
	// SnapshotDegree relabels hubs-first for locality.
	SnapshotDegree = snapmgr.LayoutDegree
	// SnapshotBFS relabels in BFS visit order from the largest hub.
	SnapshotBFS = snapmgr.LayoutBFS
	// SnapshotRCM relabels by reverse Cuthill-McKee (bandwidth
	// minimization).
	SnapshotRCM = snapmgr.LayoutRCM
	// SnapshotCompressed stores gap-coded adjacency bytes, traversed by
	// streaming decode — the smallest footprint per edge.
	SnapshotCompressed = snapmgr.LayoutCompressed
)

// Manager builds the initial snapshot with the given worker count and
// returns the graph's snapshot manager at epoch 1, publishing plain CSR
// snapshots. Creating several managers for one graph is not useful:
// each Refresh consumes the graph's single dirty set.
func (g *Graph) Manager(workers int) *SnapshotManager {
	return g.ManagerWithLayout(workers, SnapshotPlain)
}

// ManagerWithLayout is Manager publishing snapshots in the given
// storage layout. Reordered layouts (SnapshotDegree, SnapshotBFS,
// SnapshotRCM) keep their permutation fresh across incremental
// refreshes — deltas splice through the held ordering until cumulative
// churn passes ~30% of the vertex set, then the ordering is recomputed;
// SnapshotCompressed delta-splices the gap-coded payload byte-wise.
// Queries through Current are layout-blind: same inputs, same results,
// original ids everywhere.
func (g *Graph) ManagerWithLayout(workers int, layout SnapshotLayout) *SnapshotManager {
	sm := &SnapshotManager{g: g, m: snapmgr.NewLayout(workers, g.store, layout)}
	sm.cur.Store(snapshotFromView(sm.m.View(), g.undirected))
	return sm
}

// Layout returns the storage format this manager publishes.
func (sm *SnapshotManager) Layout() SnapshotLayout { return sm.m.Layout() }

// Current returns the latest published snapshot: an atomic load (plus,
// right after an epoch change, one small wrapper allocation), safe from
// any goroutine at any time, including during a concurrent Refresh.
func (sm *SnapshotManager) Current() *Snapshot {
	v := sm.m.View()
	if s := sm.cur.Load(); s != nil && s.view == v {
		return s
	}
	ns := snapshotFromView(v, sm.g.undirected)
	sm.cur.Store(ns)
	return ns
}

// Epoch returns the number of materializations published so far. It is
// monotone, advances by exactly one per Refresh (even when nothing
// changed), and never runs ahead of the snapshot Current returns.
func (sm *SnapshotManager) Epoch() uint64 { return sm.m.Epoch() }

// Staleness returns the number of vertices dirtied since the last
// Refresh began consuming updates — the work the next Refresh will do.
// With no Refresh in flight, zero means Current is exact; while one is
// materializing, a zero refers to the snapshot about to be published
// (the in-flight Refresh has already claimed the dirty set).
func (sm *SnapshotManager) Staleness() int { return sm.m.Staleness() }

// Refresh materializes a snapshot covering every update applied so far
// and publishes it, returning the new current snapshot. Incremental:
// cost is proportional to the dirty-vertex set, not the graph (see the
// type comment for the fallback threshold). When no updates arrived
// since the last Refresh the previous snapshot is republished
// unchanged. Must not run concurrently with ungated mutations of the
// graph (the manager's own ingest methods are gated and always safe);
// concurrent readers are unaffected.
func (sm *SnapshotManager) Refresh(workers int) *Snapshot {
	sm.m.Refresh(workers)
	return sm.Current()
}

// ApplyUpdates applies a batch of updates through the refresh gate:
// safe to call concurrently with other gated ingest and with the
// background auto-refresher. Mirrors the batch first for undirected
// graphs, like Graph.ApplyUpdates.
func (sm *SnapshotManager) ApplyUpdates(workers int, batch []Update) {
	if sm.g.undirected {
		batch = stream.Mirror(batch)
	}
	sm.m.Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(workers, batch) })
}

// InsertEdge adds the edge u->v at time t through the refresh gate
// (and v->u for undirected graphs).
func (sm *SnapshotManager) InsertEdge(u, v VertexID, t uint32) {
	sm.m.Ingest(func(s *dyngraph.Tracked) {
		s.Insert(u, v, t)
		if sm.g.undirected && u != v {
			s.Insert(v, u, t)
		}
	})
}

// DeleteEdge removes one edge u->v (and its mirror for undirected
// graphs) through the refresh gate, reporting whether the forward arc
// existed.
func (sm *SnapshotManager) DeleteEdge(u, v VertexID) bool {
	var ok bool
	sm.m.Ingest(func(s *dyngraph.Tracked) {
		ok = s.Delete(u, v)
		if sm.g.undirected && u != v {
			s.Delete(v, u)
		}
	})
	return ok
}

// AutoRefreshPolicy configures the background auto-refresher: refresh
// when the dirty-vertex count reaches MaxDirty or when MaxAge has
// passed since the last publication with updates pending. The zero
// value refreshes whenever anything is dirty.
type AutoRefreshPolicy = snapmgr.Policy

// RefreshMetrics reports refresh counts, latencies, and the current
// epoch lag (pending dirty vertices and snapshot age).
type RefreshMetrics = snapmgr.Metrics

// StartAutoRefresh launches a background goroutine that refreshes
// under the given policy, reporting false if one is already running.
// While it runs, mutations must go through the manager's ingest
// methods (ApplyUpdates, InsertEdge, DeleteEdge), which serialize with
// the background refresh; mutating the Graph directly would race the
// materialization. Readers are unaffected and never block.
func (sm *SnapshotManager) StartAutoRefresh(p AutoRefreshPolicy) bool { return sm.m.Start(p) }

// StopAutoRefresh halts the background refresher, waiting for any
// in-flight refresh to publish. Pending updates stay pending until the
// next Refresh or StartAutoRefresh.
func (sm *SnapshotManager) StopAutoRefresh() { sm.m.Stop() }

// Metrics returns a snapshot of refresh activity and current lag.
func (sm *SnapshotManager) Metrics() RefreshMetrics { return sm.m.Metrics() }
