package snapdyn_test

import (
	"fmt"

	"snapdyn"
)

// The basic lifecycle: build a dynamic graph, mutate it, query it.
func Example() {
	g := snapdyn.New(8, snapdyn.Undirected())
	g.InsertEdge(0, 1, 10)
	g.InsertEdge(1, 2, 20)
	g.InsertEdge(4, 5, 30)

	snap := g.Snapshot(1)
	conn := snap.Connectivity(1)
	fmt.Println("0~2 connected:", conn.Connected(0, 2))
	fmt.Println("0~4 connected:", conn.Connected(0, 4))

	g.DeleteEdge(1, 2)
	snap = g.Snapshot(1)
	conn = snap.Connectivity(1)
	fmt.Println("0~2 after delete:", conn.Connected(0, 2))
	// Output:
	// 0~2 connected: true
	// 0~4 connected: false
	// 0~2 after delete: false
}

// Choosing a representation: the hybrid structure is the default; pure
// arrays or treaps are available for insert- or delete-heavy workloads.
func ExampleNew() {
	hybrid := snapdyn.New(100)
	arrays := snapdyn.New(100, snapdyn.WithRepresentation(snapdyn.RepDynArr))
	treaps := snapdyn.New(100, snapdyn.WithRepresentation(snapdyn.RepTreaps))
	fmt.Println(hybrid.Representation())
	fmt.Println(arrays.Representation())
	fmt.Println(treaps.Representation())
	// Output:
	// hybrid-arr-treap
	// dyn-arr
	// treaps
}

// Streaming structural updates in batches.
func ExampleGraph_ApplyUpdates() {
	g := snapdyn.New(4)
	g.ApplyUpdates(1, []snapdyn.Update{
		{Edge: snapdyn.Edge{U: 0, V: 1, T: 1}, Op: snapdyn.OpInsert},
		{Edge: snapdyn.Edge{U: 0, V: 2, T: 2}, Op: snapdyn.OpInsert},
		{Edge: snapdyn.Edge{U: 0, V: 1, T: 1}, Op: snapdyn.OpDelete},
	})
	fmt.Println("arcs:", g.NumEdges())
	fmt.Println("0->1:", g.HasEdge(0, 1))
	fmt.Println("0->2:", g.HasEdge(0, 2))
	// Output:
	// arcs: 1
	// 0->1: false
	// 0->2: true
}

// Temporal analysis: restrict traversal to a time window.
func ExampleSnapshot_TemporalBFS() {
	g := snapdyn.New(4, snapdyn.Undirected())
	g.InsertEdge(0, 1, 10)
	g.InsertEdge(1, 2, 50)
	g.InsertEdge(2, 3, 90)
	snap := g.Snapshot(1)

	early := snap.TemporalBFS(1, 0, 0, 40)
	full := snap.TemporalBFS(1, 0, 0, 100)
	fmt.Println("reached with labels <= 40:", early.Reached)
	fmt.Println("reached with labels <= 100:", full.Reached)
	// Output:
	// reached with labels <= 40: 2
	// reached with labels <= 100: 4
}

// Extracting the subgraph of a time interval (the induced subgraph
// kernel).
func ExampleSnapshot_InducedByTime() {
	g := snapdyn.New(4)
	g.InsertEdge(0, 1, 10)
	g.InsertEdge(1, 2, 50)
	g.InsertEdge(2, 3, 90)
	snap := g.Snapshot(1)
	win := snap.InducedByTime(1, 20, 70) // open interval: keeps label 50
	fmt.Println("arcs in (20,70):", win.NumEdges())
	// Output:
	// arcs in (20,70): 1
}

// Weighted shortest paths with time labels as weights (delta-stepping).
func ExampleSnapshot_ShortestPaths() {
	g := snapdyn.New(3, snapdyn.Undirected())
	g.InsertEdge(0, 1, 4)
	g.InsertEdge(1, 2, 3)
	g.InsertEdge(0, 2, 9)
	snap := g.Snapshot(1)
	dist := snap.ShortestPaths(1, 0, 0)
	fmt.Println("dist to 2:", dist[2])
	// Output:
	// dist to 2: 7
}

// Incremental connectivity without snapshot rebuilds.
func ExampleDynamicConnectivity() {
	d := snapdyn.NewDynamicConnectivity(5)
	d.InsertEdge(0, 1, 1)
	d.InsertEdge(1, 2, 2)
	d.InsertEdge(0, 2, 3) // cycle edge
	fmt.Println("0~2:", d.Connected(0, 2))
	d.DeleteEdge(1, 2) // tree edge, replaced by the cycle edge
	fmt.Println("0~2 after tree-edge delete:", d.Connected(0, 2))
	d.DeleteEdge(0, 2)
	d.DeleteEdge(0, 1)
	fmt.Println("0~2 after all deletes:", d.Connected(0, 2))
	// Output:
	// 0~2: true
	// 0~2 after tree-edge delete: true
	// 0~2 after all deletes: false
}

// Compressing a snapshot to reduce memory footprint.
func ExampleSnapshot_Compress() {
	g := snapdyn.New(4)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(0, 2, 2)
	g.InsertEdge(0, 3, 3)
	snap := g.Snapshot(1)
	cs := snap.Compress(1)
	fmt.Println("arcs:", cs.NumEdges())
	fmt.Println("degree of 0:", cs.OutDegree(0))
	// Output:
	// arcs: 3
	// degree of 0: 3
}
