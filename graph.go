package snapdyn

import (
	"fmt"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/stream"
)

// VertexID identifies a vertex: an integer in [0, NumVertices).
type VertexID = edge.ID

// Edge is a directed arc with a time label.
type Edge = edge.Edge

// Update is one element of a structural update stream.
type Update = edge.Update

// Update operation kinds.
const (
	OpInsert = edge.Insert
	OpDelete = edge.Delete
)

// Representation selects the dynamic adjacency structure backing a Graph.
type Representation int

// Available representations. RepHybrid is the paper's recommended
// default: array storage for low-degree vertices, treaps above the
// degree threshold.
const (
	RepHybrid Representation = iota
	RepDynArr
	RepTreaps
	RepVpart
	RepEpart
)

// String implements fmt.Stringer.
func (r Representation) String() string {
	switch r {
	case RepHybrid:
		return "hybrid-arr-treap"
	case RepDynArr:
		return "dyn-arr"
	case RepTreaps:
		return "treaps"
	case RepVpart:
		return "vpart"
	case RepEpart:
		return "epart"
	default:
		return fmt.Sprintf("representation(%d)", int(r))
	}
}

// Options configure graph construction; use the With* helpers.
type Options struct {
	rep           Representation
	expectedEdges int
	degreeThresh  int
	seed          uint64
	undirected    bool
	batched       bool
}

// Option mutates construction options.
type Option func(*Options)

// WithRepresentation selects the adjacency structure.
func WithRepresentation(r Representation) Option {
	return func(o *Options) { o.rep = r }
}

// WithExpectedEdges sizes initial adjacency arrays to the paper's k·m/n
// heuristic and pre-reserves arena capacity.
func WithExpectedEdges(m int) Option {
	return func(o *Options) { o.expectedEdges = m }
}

// WithDegreeThreshold sets the hybrid representation's degree-thresh
// (default 32).
func WithDegreeThreshold(t int) Option {
	return func(o *Options) { o.degreeThresh = t }
}

// WithSeed seeds treap priorities for reproducible structures.
func WithSeed(seed uint64) Option {
	return func(o *Options) { o.seed = seed }
}

// Undirected makes every InsertEdge/DeleteEdge maintain both arcs.
func Undirected() Option {
	return func(o *Options) { o.undirected = true }
}

// Batched wraps the representation with semi-sorted batch application
// for ApplyUpdates.
func Batched() Option {
	return func(o *Options) { o.batched = true }
}

// Graph is a dynamic graph over a fixed vertex set [0, n).
// All mutation and query methods are safe for concurrent use.
//
// Every graph tracks the set of vertices whose adjacency changed since
// the last snapshot materialization (one atomic bit-set per update), so
// a SnapshotManager can rebuild snapshots incrementally; see Manager.
// One caveat follows from that pipeline: while a manager's background
// auto-refresher is running (SnapshotManager.StartAutoRefresh), apply
// mutations through the manager's gated ingest methods rather than
// the Graph directly, so they serialize with the background
// materialization.
type Graph struct {
	store      *dyngraph.Tracked
	undirected bool
}

// New creates a dynamic graph over n vertices.
func New(n int, opts ...Option) *Graph {
	o := Options{expectedEdges: 8 * n, seed: 1}
	for _, f := range opts {
		f(&o)
	}
	var s dyngraph.Store
	switch o.rep {
	case RepDynArr:
		s = dyngraph.NewDynArr(n, o.expectedEdges)
	case RepTreaps:
		s = dyngraph.NewTreapStore(n, o.seed)
	case RepVpart:
		s = dyngraph.NewVpart(n, o.expectedEdges)
	case RepEpart:
		s = dyngraph.NewEpart(n, o.expectedEdges, 0)
	default:
		s = dyngraph.NewHybrid(n, o.expectedEdges, o.degreeThresh, o.seed)
	}
	if o.batched {
		s = dyngraph.NewBatched(s)
	}
	return &Graph{store: dyngraph.NewTracked(s), undirected: o.undirected}
}

// Representation returns the name of the backing structure.
func (g *Graph) Representation() string { return g.store.Name() }

// NumVertices returns the vertex-set size.
func (g *Graph) NumVertices() int { return g.store.NumVertices() }

// NumEdges returns the number of live arcs (an undirected edge counts as
// two arcs).
func (g *Graph) NumEdges() int64 { return g.store.NumEdges() }

// Undirected reports whether the graph maintains both arcs per edge.
func (g *Graph) Undirected() bool { return g.undirected }

// InsertEdge adds the edge u->v with time label t (and v->u for
// undirected graphs). Inserting the same edge again adds a parallel edge
// (multigraph semantics, as in the paper).
func (g *Graph) InsertEdge(u, v VertexID, t uint32) {
	g.store.Insert(u, v, t)
	if g.undirected && u != v {
		g.store.Insert(v, u, t)
	}
}

// DeleteEdge removes one edge u->v (and its mirror for undirected
// graphs), reporting whether the forward arc existed.
func (g *Graph) DeleteEdge(u, v VertexID) bool {
	ok := g.store.Delete(u, v)
	if g.undirected && u != v {
		g.store.Delete(v, u)
	}
	return ok
}

// DeleteEdgeAt removes the specific edge u->v with time label t (array
// representations scan to locate the exact tuple; treaps locate the
// neighbor in O(log d)). t == 0 acts as a wildcard.
func (g *Graph) DeleteEdgeAt(u, v VertexID, t uint32) bool {
	ok := g.store.DeleteTuple(u, v, t)
	if g.undirected && u != v {
		g.store.DeleteTuple(v, u, t)
	}
	return ok
}

// OutDegree returns the number of live arcs out of u.
func (g *Graph) OutDegree(u VertexID) int { return g.store.Degree(u) }

// HasEdge reports whether at least one live arc u->v exists.
func (g *Graph) HasEdge(u, v VertexID) bool { return g.store.Has(u, v) }

// Neighbors calls fn for every live arc out of u until fn returns false.
// fn must not mutate the graph for the same vertex.
func (g *Graph) Neighbors(u VertexID, fn func(v VertexID, t uint32) bool) {
	g.store.Neighbors(u, fn)
}

// ApplyUpdates applies a batch of updates with the given worker count
// (<= 0 means GOMAXPROCS). For undirected graphs the batch is mirrored
// first.
func (g *Graph) ApplyUpdates(workers int, batch []Update) {
	if g.undirected {
		batch = stream.Mirror(batch)
	}
	g.store.ApplyBatch(workers, batch)
}

// InsertEdges bulk-loads an edge list as a series of insertions.
func (g *Graph) InsertEdges(workers int, edges []Edge) {
	if g.undirected {
		ups := stream.Mirror(stream.Inserts(edges))
		g.store.ApplyBatch(workers, ups)
		return
	}
	dyngraph.InsertAll(g.store, workers, edges)
}

// Snapshot freezes the current adjacency into an immutable CSR view for
// the analysis kernels with a full rebuild. It must not run concurrently
// with mutations, and it does not consume the dirty set a Manager
// maintains — one-shot analysis and the managed pipeline compose freely.
// For repeated snapshots over a live update stream, Manager's
// incremental Refresh is much cheaper.
func (g *Graph) Snapshot(workers int) *Snapshot {
	return &Snapshot{g: csr.FromStore(workers, g.store), undirected: g.undirected}
}

// Stats returns degree-distribution summary statistics.
func (g *Graph) Stats() GraphStats { return dyngraph.Stats(g.store, 0) }

// GraphStats summarizes a graph's shape.
type GraphStats = dyngraph.GraphStats
