package snapdyn

import (
	"sync"
	"testing"
)

func TestVertexLabelsBasic(t *testing.T) {
	l := NewVertexLabels(5)
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	l.Set(2, 42)
	if l.Get(2) != 42 || l.Get(0) != 0 {
		t.Fatal("get/set wrong")
	}
}

func TestVertexLabelsConcurrent(t *testing.T) {
	l := NewVertexLabels(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v := VertexID(i % 64)
				l.Set(v, uint32(w+1))
				l.Get(v)
			}
		}(w)
	}
	wg.Wait()
	for v := VertexID(0); v < 64; v++ {
		if got := l.Get(v); got < 1 || got > 8 {
			t.Fatalf("label[%d] = %d", v, got)
		}
	}
}

func TestVertexLabelsWindow(t *testing.T) {
	l := NewVertexLabels(5)
	l.Set(0, 10)
	l.Set(1, 20)
	l.Set(2, 30)
	l.Set(3, 40)
	keep := l.InWindow(2, 15, 35)
	want := []bool{false, true, true, false, false}
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("keep[%d] = %v", i, keep[i])
		}
	}
}

func TestFromEdgeTimes(t *testing.T) {
	g := New(4, Undirected())
	g.InsertEdge(0, 1, 30)
	g.InsertEdge(0, 2, 10)
	g.InsertEdge(1, 2, 20)
	snap := g.Snapshot(0)
	l := FromEdgeTimes(0, snap)
	if l.Get(0) != 10 || l.Get(1) != 20 || l.Get(2) != 10 {
		t.Fatalf("labels = %d %d %d", l.Get(0), l.Get(1), l.Get(2))
	}
	if l.Get(3) != 0 {
		t.Fatal("isolated vertex should have no label")
	}
}

func TestInducedByVertexWindow(t *testing.T) {
	g := New(4, Undirected())
	g.InsertEdge(0, 1, 5)
	g.InsertEdge(1, 2, 6)
	g.InsertEdge(2, 3, 7)
	snap := g.Snapshot(0)
	l := NewVertexLabels(4)
	l.Set(0, 1)
	l.Set(1, 2)
	l.Set(2, 3)
	l.Set(3, 9)
	sub := snap.InducedByVertexWindow(0, l, 1, 3)
	// Vertices 0,1,2 kept: edges {0,1} and {1,2} survive (4 arcs).
	if sub.NumEdges() != 4 {
		t.Fatalf("arcs = %d, want 4", sub.NumEdges())
	}
	if sub.OutDegree(3) != 0 {
		t.Fatal("excluded vertex kept arcs")
	}
}

func TestClusteringFacade(t *testing.T) {
	g := New(4, Undirected())
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 2)
	g.InsertEdge(2, 0, 3)
	snap := g.Snapshot(0)
	c := snap.Clustering(0)
	if c.TotalTriangles != 1 {
		t.Fatalf("triangles = %d", c.TotalTriangles)
	}
}

func TestEstimateDiameter(t *testing.T) {
	// Path graph: diameter is exact under double sweep.
	g := New(32, Undirected())
	for v := VertexID(0); v < 31; v++ {
		g.InsertEdge(v, v+1, 1)
	}
	snap := g.Snapshot(0)
	if d := snap.EstimateDiameter(0, 4, 1); d != 31 {
		t.Fatalf("path diameter estimate = %d, want 31", d)
	}
	// Small-world graph: estimate must be small but positive.
	_, rsnap := buildSmall(t)
	d := rsnap.EstimateDiameter(0, 4, 2)
	if d < 2 || d > 64 {
		t.Fatalf("R-MAT diameter estimate = %d out of plausible range", d)
	}
}
