module snapdyn

go 1.24
