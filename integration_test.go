package snapdyn

// End-to-end integration tests: update stream -> dynamic representation
// -> CSR snapshot -> kernels, with independent implementations
// cross-checked against each other (BFS vs link-cut forest vs component
// labels; rebuild-vs-delete subgraph extraction; temporal filters).

import (
	"testing"

	"snapdyn/internal/xrand"
)

func buildTestNetwork(t *testing.T, rep Representation, scale int, seed uint64) (*Graph, []Edge) {
	t.Helper()
	p := PaperRMAT(scale, 8<<scale, 100, seed)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		t.Fatal(err)
	}
	g := New(p.NumVertices(),
		WithRepresentation(rep),
		WithExpectedEdges(2*len(edges)),
		WithSeed(seed),
		Undirected())
	g.InsertEdges(0, edges)
	return g, edges
}

func TestPipelineConnectivityConsistency(t *testing.T) {
	for _, rep := range []Representation{RepHybrid, RepDynArr, RepTreaps} {
		rep := rep
		t.Run(rep.String(), func(t *testing.T) {
			g, _ := buildTestNetwork(t, rep, 10, 17)
			snap := g.Snapshot(0)
			comp := snap.Components(0)
			conn := snap.Connectivity(0)
			r := xrand.New(5)
			n := uint32(snap.NumVertices())
			for i := 0; i < 2000; i++ {
				u, v := r.Uint32n(n), r.Uint32n(n)
				byLabels := comp[u] == comp[v]
				byForest := conn.Connected(u, v)
				if byLabels != byForest {
					t.Fatalf("labels=%v forest=%v for (%d,%d)", byLabels, byForest, u, v)
				}
				if i%100 == 0 {
					byBFS, _ := snap.STConnected(0, u, v)
					if byBFS != byLabels {
						t.Fatalf("bfs=%v labels=%v for (%d,%d)", byBFS, byLabels, u, v)
					}
				}
			}
		})
	}
}

func TestPipelineSurvivesChurn(t *testing.T) {
	g, edges := buildTestNetwork(t, RepHybrid, 9, 23)
	before := g.NumEdges()

	// Delete a third of the network, insert fresh edges, and verify all
	// kernels still agree with each other.
	dels := Deletions(edges, len(edges)/3, 31)
	g.ApplyUpdates(0, dels)
	fresh, err := GenerateRMAT(0, PaperRMAT(9, 1000, 100, 77))
	if err != nil {
		t.Fatal(err)
	}
	g.InsertEdges(0, fresh)
	// Arcs: -2 per non-loop deletion (-1 per loop), +2 per fresh
	// non-loop edge (+1 per loop).
	loopUpdates := func(us []Update) int64 {
		c := int64(0)
		for _, u := range us {
			if u.U == u.V {
				c++
			}
		}
		return c
	}
	delLoops := loopUpdates(dels)
	freshLoops := loopUpdates(Inserts(fresh))
	want := before - 2*int64(len(dels)) + delLoops + 2*int64(len(fresh)) - freshLoops
	if g.NumEdges() != want {
		t.Fatalf("arcs = %d, want %d", g.NumEdges(), want)
	}

	snap := g.Snapshot(0)
	if snap.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot arcs %d != graph arcs %d", snap.NumEdges(), g.NumEdges())
	}
	comp := snap.Components(0)
	conn := snap.Connectivity(0)
	r := xrand.New(3)
	for i := 0; i < 500; i++ {
		u, v := r.Uint32n(uint32(snap.NumVertices())), r.Uint32n(uint32(snap.NumVertices()))
		if (comp[u] == comp[v]) != conn.Connected(u, v) {
			t.Fatalf("post-churn disagreement on (%d,%d)", u, v)
		}
	}
}

func TestPipelineTemporalWindowMonotone(t *testing.T) {
	g, _ := buildTestNetwork(t, RepHybrid, 9, 41)
	snap := g.Snapshot(0)
	// Growing windows keep at least as many arcs and components can only
	// merge (weakly fewer) as the window grows.
	prevArcs := int64(-1)
	prevComps := 1 << 30
	for _, hi := range []uint32{11, 31, 61, 101} {
		win := snap.InducedByTime(0, 0, hi)
		if win.NumEdges() < prevArcs {
			t.Fatalf("window (0,%d) lost arcs: %d < %d", hi, win.NumEdges(), prevArcs)
		}
		comps := win.ComponentCount(0)
		if comps > prevComps {
			t.Fatalf("window (0,%d) split components: %d > %d", hi, comps, prevComps)
		}
		prevArcs, prevComps = win.NumEdges(), comps
	}
	// The full window must equal the unfiltered snapshot.
	full := snap.InducedByTime(0, 0, 101)
	if full.NumEdges() != snap.NumEdges() {
		t.Fatalf("full window arcs %d != snapshot arcs %d", full.NumEdges(), snap.NumEdges())
	}
}

func TestPipelineTemporalBFSSubsetOfStatic(t *testing.T) {
	g, _ := buildTestNetwork(t, RepHybrid, 10, 59)
	snap := g.Snapshot(0)
	src := snap.SampleSources(1, 2)[0]
	static := snap.BFS(0, src)
	for _, win := range [][2]uint32{{1, 100}, {20, 70}, {40, 41}} {
		temporal := snap.TemporalBFS(0, src, win[0], win[1])
		if temporal.Reached > static.Reached {
			t.Fatalf("window %v reached more than static", win)
		}
		for v := range temporal.Level {
			if temporal.Level[v] != NotVisited && static.Level[v] == NotVisited {
				t.Fatalf("window %v reached %d which static BFS did not", win, v)
			}
			if temporal.Level[v] != NotVisited && temporal.Level[v] < static.Level[v] {
				t.Fatalf("window %v found shorter path to %d than static", win, v)
			}
		}
	}
}

func TestPipelineBetweennessAgreesWithDegenerateCases(t *testing.T) {
	// On a network where every edge has the same time label, temporal
	// paths of length >= 2 are all invalid (labels must strictly
	// increase), so only direct neighbors are reachable and all
	// betweenness scores are 0.
	n := 64
	g := New(n, Undirected())
	r := xrand.New(6)
	for i := 0; i < 300; i++ {
		g.InsertEdge(r.Uint32n(uint32(n)), r.Uint32n(uint32(n)), 5)
	}
	snap := g.Snapshot(0)
	bc := snap.Betweenness(0, BCOptions{Temporal: true})
	for v, s := range bc {
		if s != 0 {
			t.Fatalf("uniform-label temporal bc[%d] = %v, want 0", v, s)
		}
	}
	// Static betweenness on the same graph is generally nonzero.
	static := snap.Betweenness(0, BCOptions{})
	nonzero := false
	for _, s := range static {
		if s > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("static bc identically zero on a random graph")
	}
}

func TestRepresentationsProduceIdenticalSnapshots(t *testing.T) {
	// The same update sequence through different representations must
	// produce the same graph (multiset of arcs per vertex).
	p := PaperRMAT(9, 6<<9, 50, 13)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		t.Fatal(err)
	}
	dels := Deletions(edges, len(edges)/4, 19)
	snapshots := make([]*Snapshot, 0, 3)
	for _, rep := range []Representation{RepHybrid, RepDynArr, RepTreaps} {
		g := New(p.NumVertices(), WithRepresentation(rep), WithExpectedEdges(len(edges)))
		g.InsertEdges(0, edges)
		g.ApplyUpdates(0, dels)
		snapshots = append(snapshots, g.Snapshot(0))
	}
	base := snapshots[0]
	for i, s := range snapshots[1:] {
		if s.NumEdges() != base.NumEdges() {
			t.Fatalf("snapshot %d arcs %d != %d", i+1, s.NumEdges(), base.NumEdges())
		}
		for u := 0; u < base.NumVertices(); u++ {
			if s.OutDegree(uint32(u)) != base.OutDegree(uint32(u)) {
				t.Fatalf("snapshot %d degree(%d) differs", i+1, u)
			}
			baseAdj, _ := base.Neighbors(uint32(u))
			sAdj, _ := s.Neighbors(uint32(u))
			counts := map[uint32]int{}
			for _, v := range baseAdj {
				counts[v]++
			}
			for _, v := range sAdj {
				counts[v]--
			}
			for v, c := range counts {
				if c != 0 {
					t.Fatalf("snapshot %d vertex %d neighbor %d multiset differs by %d", i+1, u, v, c)
				}
			}
		}
	}
}
